//! Server-side telemetry: every series the serving stack records,
//! wired once into an [`hdc_obs::Registry`], plus the three exposition
//! planes — the `{"metrics":true}` admin request (structured JSON),
//! the plaintext scrape listener (`hdc_serve --metrics-addr`,
//! Prometheus text format), and structured log lines on swap events.
//!
//! Telemetry is strictly opt-in: every recording site in the serving
//! stack is guarded by an `Option<&ServeMetrics>`, and with `None` no
//! clock is read and no atomic beyond the always-on request/connection
//! counters is touched — so responses are byte-identical with
//! telemetry on or off (pinned by a differential test) and the
//! throughput cost stays within the `ci/bench_gates.json` overhead
//! gate.
//!
//! Stage histograms record **microseconds** and cover the whole
//! request path: first-byte sniff → parse/validate/dispatch →
//! batch-queue wait → kernel execute (classify vs search) →
//! write-backlog drain, plus the event loop's own internals (epoll
//! wait, wakeup batching, backlog high-watermark hits, overload
//! rejections, connection churn).

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdc_obs::{Counter, Gauge, Histogram, Registry};
use hdc_store::ModelRegistry;

use crate::admission::ThrottleReason;

/// Elapsed time since `start` in whole microseconds, saturating — the
/// unit every stage histogram records.
pub(crate) fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Which swap landed, for [`ServeMetrics::record_swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapKind {
    /// A snapshot `reload`.
    Reload,
    /// A live `rekey`.
    Rekey,
    /// A `rollback` to a retired generation.
    Rollback,
}

impl SwapKind {
    fn name(self) -> &'static str {
        match self {
            SwapKind::Reload => "reload",
            SwapKind::Rekey => "rekey",
            SwapKind::Rollback => "rollback",
        }
    }
}

/// All serving telemetry series, pre-registered so hot paths record
/// through `Arc` handles without touching the registry mutex.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    started: Instant,
    /// Requests per wire format.
    pub(crate) requests_json: Arc<Counter>,
    /// Requests per wire format.
    pub(crate) requests_binary: Arc<Counter>,
    /// First byte seen → wire mode negotiated.
    pub(crate) sniff_us: Arc<Histogram>,
    /// Parse/validate/admit/enqueue, the policy seam's whole turn.
    pub(crate) dispatch_us: Arc<Histogram>,
    /// Job enqueue → batch worker pop.
    pub(crate) queue_wait_us: Arc<Histogram>,
    /// Fused encode+search kernel time per classify batch.
    pub(crate) execute_classify_us: Arc<Histogram>,
    /// Fused top-k kernel time per search group.
    pub(crate) execute_search_us: Arc<Histogram>,
    /// Write-backlog drain (nonblocking flush / writer-thread write).
    pub(crate) drain_us: Arc<Histogram>,
    /// Jobs per popped batch.
    pub(crate) batch_size: Arc<Histogram>,
    /// Admission refusals by reason.
    pub(crate) throttled_budget: Arc<Counter>,
    /// Admission refusals by reason.
    pub(crate) throttled_rate: Arc<Counter>,
    /// Admission refusals by reason.
    pub(crate) throttled_sweep: Arc<Counter>,
    /// Time blocked in `epoll_wait`.
    pub(crate) epoll_wait_us: Arc<Histogram>,
    /// Completions drained per waker event.
    pub(crate) wakeup_batch: Arc<Histogram>,
    /// Reads paused because a connection's write backlog crossed the
    /// high watermark.
    pub(crate) backlog_high_watermark: Arc<Counter>,
    /// Connections answered with a structured overload error at accept.
    pub(crate) overload_rejects: Arc<Counter>,
    /// Connection churn.
    pub(crate) conns_opened: Arc<Counter>,
    /// Connection churn.
    pub(crate) conns_closed: Arc<Counter>,
    /// Currently open connections.
    pub(crate) active_connections: Arc<Gauge>,
    /// Completed swaps by kind.
    pub(crate) swap_reload: Arc<Counter>,
    /// Completed swaps by kind.
    pub(crate) swap_rekey: Arc<Counter>,
    /// Completed swaps by kind.
    pub(crate) swap_rollback: Arc<Counter>,
    /// Age (seconds) of the generation each swap retired.
    pub(crate) swapped_generation_age_secs: Arc<Histogram>,
    // Gauges refreshed from their sources at render time.
    uptime_secs: Arc<Gauge>,
    vault_reads: Arc<Gauge>,
    vault_denied: Arc<Gauge>,
    generation: Arc<Gauge>,
    generation_age_secs: Arc<Gauge>,
    hardened: Arc<Gauge>,
    kernel_hamming_rows: Arc<Gauge>,
    kernel_dot_rows: Arc<Gauge>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Registers the full serving series catalog (see the `hdc_serve`
    /// crate docs for the list).
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn new() -> Self {
        let r = Registry::new();
        let stage = |name: &str, help: &str| r.histogram(name, help);
        ServeMetrics {
            started: Instant::now(),
            requests_json: r.counter_with(
                "hdc_requests_total",
                "Requests received, by wire format.",
                &[("wire", "json")],
            ),
            requests_binary: r.counter_with(
                "hdc_requests_total",
                "Requests received, by wire format.",
                &[("wire", "binary")],
            ),
            sniff_us: stage(
                "hdc_stage_sniff_us",
                "First byte seen to wire mode negotiated, microseconds.",
            ),
            dispatch_us: stage(
                "hdc_stage_dispatch_us",
                "Parse/validate/admit/enqueue per request, microseconds.",
            ),
            queue_wait_us: stage(
                "hdc_stage_queue_wait_us",
                "Enqueue to batch-worker pop per job, microseconds.",
            ),
            execute_classify_us: stage(
                "hdc_stage_execute_classify_us",
                "Fused encode+search kernel time per classify batch, microseconds.",
            ),
            execute_search_us: stage(
                "hdc_stage_execute_search_us",
                "Fused top-k kernel time per search group, microseconds.",
            ),
            drain_us: stage(
                "hdc_stage_drain_us",
                "Write-backlog drain per flush, microseconds.",
            ),
            batch_size: r.histogram("hdc_batch_size", "Jobs per popped batch."),
            throttled_budget: r.counter_with(
                "hdc_throttled_total",
                "Admission refusals, by reason.",
                &[("reason", "budget")],
            ),
            throttled_rate: r.counter_with(
                "hdc_throttled_total",
                "Admission refusals, by reason.",
                &[("reason", "rate")],
            ),
            throttled_sweep: r.counter_with(
                "hdc_throttled_total",
                "Admission refusals, by reason.",
                &[("reason", "sweep")],
            ),
            epoll_wait_us: r.histogram(
                "hdc_epoll_wait_us",
                "Time blocked in epoll_wait per loop turn, microseconds.",
            ),
            wakeup_batch: r.histogram("hdc_wakeup_batch", "Completions drained per waker event."),
            backlog_high_watermark: r.counter(
                "hdc_backlog_high_watermark_total",
                "Reads paused at the write-backlog high watermark.",
            ),
            overload_rejects: r.counter(
                "hdc_overload_rejects_total",
                "Connections refused with a structured overload error.",
            ),
            conns_opened: r.counter("hdc_connections_opened_total", "Connections accepted."),
            conns_closed: r.counter("hdc_connections_closed_total", "Connections closed."),
            active_connections: r.gauge("hdc_active_connections", "Currently open connections."),
            swap_reload: r.counter_with(
                "hdc_swaps_total",
                "Completed generation swaps, by kind.",
                &[("kind", "reload")],
            ),
            swap_rekey: r.counter_with(
                "hdc_swaps_total",
                "Completed generation swaps, by kind.",
                &[("kind", "rekey")],
            ),
            swap_rollback: r.counter_with(
                "hdc_swaps_total",
                "Completed generation swaps, by kind.",
                &[("kind", "rollback")],
            ),
            swapped_generation_age_secs: r.histogram(
                "hdc_swapped_generation_age_secs",
                "Age of the generation each swap retired, seconds.",
            ),
            uptime_secs: r.gauge(
                "hdc_uptime_secs",
                "Seconds since the metrics plane started.",
            ),
            vault_reads: r.gauge(
                "hdc_vault_reads",
                "Privileged key-vault reads by the serving generation (HDLock audit trail).",
            ),
            vault_denied: r.gauge(
                "hdc_vault_denied_reads",
                "Key-vault reads refused because the vault was destroyed.",
            ),
            generation: r.gauge("hdc_generation", "Currently serving generation id."),
            generation_age_secs: r.gauge(
                "hdc_generation_age_secs",
                "Seconds the current generation has been serving.",
            ),
            hardened: r.gauge(
                "hdc_hardened",
                "1 when the serving generation encodes in constant-time hardened mode.",
            ),
            kernel_hamming_rows: r.gauge(
                "hdc_kernel_hamming_rows",
                "Class-memory rows scanned by binary Hamming kernels (process-wide).",
            ),
            kernel_dot_rows: r.gauge(
                "hdc_kernel_dot_rows",
                "Class-memory rows scanned by integer dot kernels (process-wide).",
            ),
            registry: r,
        }
    }

    /// Seconds since this metrics plane was created.
    #[must_use]
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records one admission refusal under its typed reason.
    pub fn record_throttle_reason(&self, reason: &ThrottleReason) {
        match reason {
            ThrottleReason::BudgetExhausted { .. } => self.throttled_budget.inc(),
            ThrottleReason::RateExceeded => self.throttled_rate.inc(),
            ThrottleReason::SweepDetected { .. } => self.throttled_sweep.inc(),
        }
    }

    /// Records a completed swap: per-kind counter, retired-generation
    /// age, and one structured log line (the drain/swap event stream).
    pub fn record_swap(&self, kind: SwapKind, new_generation: u64, retired_age: Duration) {
        match kind {
            SwapKind::Reload => self.swap_reload.inc(),
            SwapKind::Rekey => self.swap_rekey.inc(),
            SwapKind::Rollback => self.swap_rollback.inc(),
        }
        self.swapped_generation_age_secs
            .record(retired_age.as_secs());
        eprintln!(
            "event=swap kind={} generation={} retired_age_secs={} uptime_secs={}",
            kind.name(),
            new_generation,
            retired_age.as_secs(),
            self.uptime_secs()
        );
    }

    /// Refreshes the render-time gauges from their sources: uptime,
    /// process-wide kernel row counters, and (when serving a registry)
    /// generation identity, age and vault audit counters.
    fn refresh(&self, registry: Option<&ModelRegistry>) {
        #[allow(clippy::cast_possible_wrap)]
        fn as_i64(v: u64) -> i64 {
            i64::try_from(v).unwrap_or(i64::MAX)
        }
        self.uptime_secs.set(as_i64(self.uptime_secs()));
        self.kernel_hamming_rows
            .set(as_i64(hypervec::stats::hamming_rows()));
        self.kernel_dot_rows
            .set(as_i64(hypervec::stats::dot_rows()));
        if let Some(registry) = registry {
            let current = registry.current();
            self.generation.set(as_i64(current.id()));
            self.generation_age_secs
                .set(as_i64(current.age().as_secs()));
            self.hardened.set(i64::from(current.is_hardened()));
            let (reads, denied) = match current.session().encoder().vault() {
                Some(vault) => (vault.reads(), vault.denied_reads()),
                None => (0, 0),
            };
            self.vault_reads.set(as_i64(reads));
            self.vault_denied.set(as_i64(denied));
        }
    }

    /// The full catalog in the Prometheus text exposition format — the
    /// scrape listener's payload.
    #[must_use]
    pub fn render_prometheus(&self, registry: Option<&ModelRegistry>) -> String {
        self.refresh(registry);
        self.registry.render_prometheus()
    }

    /// The `{"metrics":true}` admin response: one JSON line with the
    /// per-wire request counts, stage percentile summaries, admission
    /// and swap counters, and (when registry-backed) generation/vault
    /// identity.
    #[must_use]
    pub fn render_json(&self, id: u64, registry: Option<&ModelRegistry>) -> String {
        self.refresh(registry);
        fn hist(out: &mut String, key: &str, h: &Histogram) {
            let snap = h.snapshot();
            let (p50, p90, p99, p999) = snap.percentiles();
            out.push_str(&format!(
                "\"{key}\":{{\"count\":{},\"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"p999\":{p999}}}",
                snap.count()
            ));
        }
        let mut out = format!(
            "{{\"id\":{id},\"metrics\":{{\"uptime_secs\":{},\"requests\":{{\"json\":{},\"binary\":{}}},\
             \"active_connections\":{},\"connections\":{{\"opened\":{},\"closed\":{},\"overload_rejects\":{}}},\
             \"throttled\":{{\"budget\":{},\"rate\":{},\"sweep\":{}}},\"stages_us\":{{",
            self.uptime_secs(),
            self.requests_json.get(),
            self.requests_binary.get(),
            self.active_connections.get(),
            self.conns_opened.get(),
            self.conns_closed.get(),
            self.overload_rejects.get(),
            self.throttled_budget.get(),
            self.throttled_rate.get(),
            self.throttled_sweep.get(),
        );
        let stages: [(&str, &Histogram); 6] = [
            ("sniff", &self.sniff_us),
            ("dispatch", &self.dispatch_us),
            ("queue_wait", &self.queue_wait_us),
            ("execute_classify", &self.execute_classify_us),
            ("execute_search", &self.execute_search_us),
            ("drain", &self.drain_us),
        ];
        for (i, (key, h)) in stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            hist(&mut out, key, h);
        }
        out.push_str("},");
        hist(&mut out, "batch_size", &self.batch_size);
        out.push(',');
        hist(&mut out, "epoll_wait_us", &self.epoll_wait_us);
        out.push_str(&format!(
            ",\"backlog_high_watermark\":{},\"swaps\":{{\"reload\":{},\"rekey\":{},\"rollback\":{}}},\
             \"generation\":{},\"generation_age_secs\":{},\"hardened\":{},\
             \"vault\":{{\"reads\":{},\"denied\":{}}},\
             \"kernel_rows\":{{\"hamming\":{},\"dot\":{}}}}}}}\n",
            self.backlog_high_watermark.get(),
            self.swap_reload.get(),
            self.swap_rekey.get(),
            self.swap_rollback.get(),
            self.generation.get(),
            self.generation_age_secs.get(),
            self.hardened.get(),
            self.vault_reads.get(),
            self.vault_denied.get(),
            self.kernel_hamming_rows.get(),
            self.kernel_dot_rows.get(),
        ));
        out
    }
}

/// Serves Prometheus scrapes on `listener` until `shutdown`: a
/// minimal HTTP/1.1 responder (read the request head, answer one
/// `200 text/plain` with the rendered catalog, close). Runs on its own
/// thread, off the serving cores' hot paths.
///
/// # Errors
///
/// Socket configuration errors on the listener itself; per-connection
/// errors are swallowed (a dead scraper must not kill the exporter).
pub fn serve_scrapes(
    listener: &TcpListener,
    metrics: &ServeMetrics,
    registry: Option<&ModelRegistry>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                // Read (and discard) the request head; scrapers send a
                // plain GET and we answer the same payload regardless.
                let mut head = [0u8; 1024];
                let _ = stream.read(&mut head);
                let body = metrics.render_prometheus(registry);
                let response = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_reasons_land_on_their_counters() {
        let m = ServeMetrics::new();
        m.record_throttle_reason(&ThrottleReason::BudgetExhausted { budget: 5 });
        m.record_throttle_reason(&ThrottleReason::RateExceeded);
        m.record_throttle_reason(&ThrottleReason::RateExceeded);
        m.record_throttle_reason(&ThrottleReason::SweepDetected { budget: 2 });
        assert_eq!(m.throttled_budget.get(), 1);
        assert_eq!(m.throttled_rate.get(), 2);
        assert_eq!(m.throttled_sweep.get(), 1);
    }

    #[test]
    fn prometheus_render_lists_the_core_series() {
        let m = ServeMetrics::new();
        m.requests_json.add(3);
        m.dispatch_us.record(12);
        let text = m.render_prometheus(None);
        for series in [
            "hdc_requests_total{wire=\"json\"} 3",
            "# TYPE hdc_stage_dispatch_us histogram",
            "hdc_stage_queue_wait_us_count 0",
            "hdc_active_connections 0",
            "hdc_throttled_total{reason=\"budget\"} 0",
            "hdc_swaps_total{kind=\"rekey\"} 0",
            "hdc_uptime_secs",
            "hdc_kernel_hamming_rows",
            "hdc_hardened 0",
        ] {
            assert!(text.contains(series), "missing `{series}` in:\n{text}");
        }
    }

    #[test]
    fn json_render_is_one_line_and_carries_the_id() {
        let m = ServeMetrics::new();
        m.requests_binary.add(7);
        m.queue_wait_us.record(40);
        let line = m.render_json(42, None);
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.starts_with("{\"id\":42,\"metrics\":{"));
        assert!(line.contains("\"binary\":7"));
        assert!(line.contains("\"queue_wait\":{\"count\":1"));
    }

    #[test]
    fn record_swap_ticks_kind_and_age() {
        let m = ServeMetrics::new();
        m.record_swap(SwapKind::Rekey, 2, Duration::from_secs(90));
        assert_eq!(m.swap_rekey.get(), 1);
        assert_eq!(m.swapped_generation_age_secs.count(), 1);
        let (p50, _, _, _) = m.swapped_generation_age_secs.snapshot().percentiles();
        assert!((90..=93).contains(&p50));
    }
}
