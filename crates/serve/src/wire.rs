//! Length-prefixed binary wire format for high-volume classify clients.
//!
//! The line-JSON protocol ([`protocol`](crate::protocol)) stays the
//! default — it is scriptable and every existing client keeps working —
//! but it pays a float/text round trip and a JSON parse per request.
//! This module defines the binary alternative negotiated per connection
//! by **first-byte sniffing**: a JSON connection's first byte is `{`
//! (or whitespace), a binary connection's first byte is the magic
//! `0xB1`, which is neither valid JSON nor valid UTF-8 text. Whatever
//! the first byte says, the connection speaks that format for its whole
//! lifetime.
//!
//! ## Frame layout
//!
//! Every frame — request or response — is a fixed 16-byte header
//! followed by a `payload_len`-byte payload. All integers little-endian
//! (the same [`ByteWriter`]/[`ByteReader`] primitives as the snapshot
//! format):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 1    | magic0 = `0xB1` |
//! | 1      | 1    | magic1 = `0x48` (`'H'`) |
//! | 2      | 1    | version = [`WIRE_VERSION`] |
//! | 3      | 1    | opcode |
//! | 4      | 8    | request id (`u64`), echoed verbatim in responses |
//! | 12     | 4    | payload length (`u32`, ≤ [`MAX_PAYLOAD`]) |
//!
//! ## Opcodes
//!
//! | opcode | dir | payload |
//! |--------|-----|---------|
//! | `0x01` `CLASSIFY` | → | flags `u8` (bit 0 = want scores) · `n` `u16` · `n × u16` levels |
//! | `0x02` `INFO`     | → | empty |
//! | `0x03` `SEARCH`   | → | k `u16` · `n` `u16` · `n × u16` levels |
//! | `0x04` `BULK`     | → | flags `u8` (bit 0 = want scores) · count `u32` · `n` `u16` · `count × n × u16` levels |
//! | `0x81` `CLASS`    | ← | class `u32` |
//! | `0x82` `SCORES`   | ← | class `u32` · count `u32` · `count × f64` score bits |
//! | `0x83` `INFO`     | ← | dim/features/levels/classes `u32` · generation `u64` · checksum `u64` · backend len `u8` + UTF-8 |
//! | `0x84` `MATCHES`  | ← | count `u32` · `count ×` (row `u32` · `f64` score bits) |
//! | `0x85` `BULK`     | ← | count `u32` · `count ×` (tag `u8`: 0 = class `u32`, 1 = class `u32` · n `u32` · `n × f64` score bits, 2 = len `u16` + UTF-8 error) |
//! | `0xEF` `ERROR`    | ← | flags `u8` (bit 0 = throttled, bit 1 = overloaded) · len `u16` + UTF-8 message |
//!
//! A `BULK` request packs many rows of one uniform width `n` into a
//! single frame, amortizing the 16-byte header and the per-request
//! dispatch cost; the batcher fuses the rows into the same kernel
//! batches as single-row traffic, so per-row results are bit-identical
//! to `count` individual `CLASSIFY` frames. The response carries one
//! positional item per request row — rejected rows (validation,
//! admission, mid-flight swap) ride along as tagged errors instead of
//! failing the whole frame.
//!
//! Classify and search payloads carry the quantized feature row as
//! packed `u16` level indices — no float text round trip anywhere on
//! the hot path; score vectors and top-k hits travel as raw `f64` bit
//! patterns, so binary responses are **bit-identical** to what the
//! session computed (and to what the JSON path serializes via `{:?}`).
//!
//! Admin operations (`reload`/`rekey`/`stats`) are deliberately
//! JSON-only: they are rare operator-plane calls, and keeping them off
//! the binary opcode space keeps this format frozen to the hot path.
//!
//! ## Version rules
//!
//! A frame whose version is **newer** than [`WIRE_VERSION`] is answered
//! with an `ERROR` frame echoing its id (the header layout is
//! versioned-forward: magic, version, opcode, id and length never
//! move), and the connection keeps serving sibling requests. A frame
//! without our magic means the stream is desynchronized — the server
//! answers nothing and closes cleanly, because no further byte can be
//! trusted. An oversized length prefix (> [`MAX_PAYLOAD`]) is answered
//! with an `ERROR` frame, then the connection closes: the prefix cannot
//! be skipped safely.
//!
//! Malformed-but-framed requests (unknown opcode, truncated payload
//! fields, wrong version) consume exactly their declared payload and
//! answer a structured `ERROR` — sibling in-flight requests on the same
//! connection are never affected.

use std::io::Read;

use hdc_store::wire::{ByteReader, ByteWriter};

use crate::protocol::{checksum_hex, BulkOutcome, ClassifyResponse, SearchMatch, ServerInfo};

/// First magic byte; distinguishes binary connections from JSON ones
/// (never `{`, never ASCII whitespace, not valid UTF-8 lead byte).
pub const MAGIC0: u8 = 0xB1;
/// Second magic byte.
pub const MAGIC1: u8 = b'H';
/// Newest wire version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Upper bound on a frame payload. Large enough for a 64k-feature row
/// or a 100k-class score vector; anything bigger is a desynchronized or
/// hostile stream.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Upper bound on rows per bulk-classify frame. Keeps the response —
/// including worst-case per-row rejection messages — under
/// [`MAX_PAYLOAD`] and bounds the queue memory one frame can pin.
pub const MAX_BULK_ROWS: usize = 4096;

/// Request opcode: classify one quantized row.
pub const OP_CLASSIFY: u8 = 0x01;
/// Request opcode: server info.
pub const OP_INFO: u8 = 0x02;
/// Request opcode: top-k similarity search of one quantized row.
pub const OP_SEARCH: u8 = 0x03;
/// Request opcode: bulk-classify many packed rows in one frame.
pub const OP_BULK: u8 = 0x04;
/// Response opcode: top-1 class.
pub const OP_CLASS: u8 = 0x81;
/// Response opcode: top-1 class plus the full score vector.
pub const OP_SCORES: u8 = 0x82;
/// Response opcode: server info.
pub const OP_INFO_RESP: u8 = 0x83;
/// Response opcode: top-k search hits, best-first.
pub const OP_MATCHES: u8 = 0x84;
/// Response opcode: per-row outcomes of a bulk-classify frame.
pub const OP_BULK_RESP: u8 = 0x85;
/// Response opcode: structured error.
pub const OP_ERROR: u8 = 0xEF;

/// Which protocol a connection (or client) speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Line-delimited JSON (the default; scriptable).
    #[default]
    Json,
    /// Length-prefixed binary frames (this module).
    Binary,
}

impl WireMode {
    /// Parses a `--wire` CLI value.
    #[must_use]
    pub fn from_flag(value: &str) -> Option<Self> {
        match value {
            "json" => Some(WireMode::Json),
            "binary" => Some(WireMode::Binary),
            _ => None,
        }
    }

    /// The `--wire` CLI name of this mode.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WireMode::Json => "json",
            WireMode::Binary => "binary",
        }
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Wire version the sender wrote.
    pub version: u8,
    /// Frame opcode.
    pub opcode: u8,
    /// Request correlation id.
    pub id: u64,
    /// Payload length in bytes.
    pub len: usize,
}

/// A well-formed binary request, server side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerFrame {
    /// Classify one quantized row.
    Classify {
        /// Request id.
        id: u64,
        /// Quantized feature row.
        levels: Vec<u16>,
        /// Whether the full score vector was requested.
        want_scores: bool,
    },
    /// Server-info request.
    Info {
        /// Request id.
        id: u64,
    },
    /// Top-k similarity search of one quantized row.
    Search {
        /// Request id.
        id: u64,
        /// Quantized feature row.
        levels: Vec<u16>,
        /// How many best rows to return (1..=65535, enforced by the
        /// `u16` wire field being nonzero).
        k: usize,
    },
    /// Bulk-classify many packed rows of one uniform width.
    BulkClassify {
        /// Request id (one id covers the whole frame).
        id: u64,
        /// Quantized feature rows, in request order.
        rows: Vec<Vec<u16>>,
        /// Whether every row's score vector was requested.
        want_scores: bool,
    },
}

/// A framing fault that cannot be answered in-stream: the connection
/// must close after (optionally) sending one final error frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FatalFrameError {
    /// The stream does not carry our magic — desynchronized or not our
    /// protocol at all. Nothing is answered (no trustworthy id).
    BadMagic([u8; 2]),
    /// The length prefix exceeds [`MAX_PAYLOAD`]; answered with an
    /// error frame echoing `id`, then the connection closes (the
    /// payload cannot be skipped safely).
    Oversized {
        /// Id recovered from the frame header.
        id: u64,
        /// The declared payload length.
        len: usize,
    },
}

fn push_header(out: &mut Vec<u8>, opcode: u8, id: u64, payload_len: usize) {
    debug_assert!(payload_len <= MAX_PAYLOAD);
    out.push(MAGIC0);
    out.push(MAGIC1);
    out.push(WIRE_VERSION);
    out.push(opcode);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

fn frame(opcode: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    push_header(&mut out, opcode, id, payload.len());
    out.extend_from_slice(payload);
    out
}

/// Encodes a classify request frame (client side).
///
/// # Panics
///
/// Panics when the row has more than `u16::MAX` levels — the count
/// field is a `u16`, and silently truncating it would misparse the
/// payload server-side.
#[must_use]
pub fn classify_frame(id: u64, levels: &[u16], want_scores: bool) -> Vec<u8> {
    assert!(
        levels.len() <= usize::from(u16::MAX),
        "classify rows are capped at {} levels (got {})",
        u16::MAX,
        levels.len()
    );
    let mut w = ByteWriter::new();
    w.put_u8(u8::from(want_scores));
    w.put_u16(levels.len() as u16);
    w.put_u16s(levels);
    frame(OP_CLASSIFY, id, &w.into_bytes())
}

/// Encodes an info request frame (client side).
#[must_use]
pub fn info_frame(id: u64) -> Vec<u8> {
    frame(OP_INFO, id, &[])
}

/// Encodes a bulk-classify request frame (client side): `rows` packed
/// rows of one uniform width, answered as one positional multi-result
/// frame.
///
/// # Panics
///
/// Panics when `rows` is empty, exceeds [`MAX_BULK_ROWS`], mixes row
/// widths, has rows wider than `u16::MAX`, or the packed payload would
/// exceed [`MAX_PAYLOAD`] — each would misparse (or be rejected)
/// server-side.
#[must_use]
pub fn bulk_classify_frame(id: u64, rows: &[&[u16]], want_scores: bool) -> Vec<u8> {
    assert!(!rows.is_empty(), "bulk frames carry at least one row");
    assert!(
        rows.len() <= MAX_BULK_ROWS,
        "bulk frames are capped at {MAX_BULK_ROWS} rows (got {})",
        rows.len()
    );
    let width = rows[0].len();
    assert!(
        width <= usize::from(u16::MAX),
        "bulk rows are capped at {} levels (got {width})",
        u16::MAX
    );
    assert!(
        rows.iter().all(|row| row.len() == width),
        "bulk frames carry rows of one uniform width"
    );
    let payload_len = 1 + 4 + 2 + 2 * rows.len() * width;
    assert!(
        payload_len <= MAX_PAYLOAD,
        "bulk payload of {payload_len} bytes exceeds the {MAX_PAYLOAD} byte cap"
    );
    let mut w = ByteWriter::new();
    w.put_u8(u8::from(want_scores));
    w.put_u32(rows.len() as u32);
    w.put_u16(width as u16);
    for row in rows {
        w.put_u16s(row);
    }
    frame(OP_BULK, id, &w.into_bytes())
}

/// Encodes a top-k search request frame (client side).
///
/// # Panics
///
/// Panics when the row has more than `u16::MAX` levels or `k` does not
/// fit `1..=u16::MAX` — both fields are `u16` on the wire, and silent
/// truncation would misparse (or silently shrink) the request.
#[must_use]
pub fn search_frame(id: u64, levels: &[u16], k: usize) -> Vec<u8> {
    assert!(
        levels.len() <= usize::from(u16::MAX),
        "search rows are capped at {} levels (got {})",
        u16::MAX,
        levels.len()
    );
    assert!(
        (1..=usize::from(u16::MAX)).contains(&k),
        "search k must be in 1..=65535 (got {k})"
    );
    let mut w = ByteWriter::new();
    w.put_u16(k as u16);
    w.put_u16(levels.len() as u16);
    w.put_u16s(levels);
    frame(OP_SEARCH, id, &w.into_bytes())
}

/// Encodes a top-1 class response frame.
#[must_use]
pub fn class_frame(id: u64, class: usize) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(class as u32);
    frame(OP_CLASS, id, &w.into_bytes())
}

/// Encodes a class + full-score-vector response frame. Scores travel
/// as raw `f64` bit patterns — bit-identical to the session's output.
#[must_use]
pub fn scores_frame(id: u64, class: usize, scores: &[f64]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(class as u32);
    w.put_u32(scores.len() as u32);
    for &s in scores {
        w.put_u64(s.to_bits());
    }
    frame(OP_SCORES, id, &w.into_bytes())
}

/// Encodes a top-k search response frame, hits best-first. Scores
/// travel as raw `f64` bit patterns — bit-identical to the session's
/// output.
#[must_use]
pub fn matches_frame(id: u64, matches: &[SearchMatch]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(matches.len() as u32);
    for m in matches {
        w.put_u32(m.row);
        w.put_u64(m.score.to_bits());
    }
    frame(OP_MATCHES, id, &w.into_bytes())
}

/// Encodes a bulk-classify response frame: one positional item per
/// request row. Scores travel as raw `f64` bit patterns — bit-identical
/// to the session's output.
#[must_use]
pub fn bulk_response_frame(id: u64, items: &[crate::batcher::BulkItem]) -> Vec<u8> {
    use crate::batcher::BulkItem;
    let mut w = ByteWriter::new();
    w.put_u32(items.len() as u32);
    for item in items {
        match item {
            BulkItem::Class(class) => {
                w.put_u8(0);
                w.put_u32(*class as u32);
            }
            BulkItem::ClassWithScores(class, scores) => {
                w.put_u8(1);
                w.put_u32(*class as u32);
                w.put_u32(scores.len() as u32);
                for &s in scores {
                    w.put_u64(s.to_bits());
                }
            }
            BulkItem::Rejected(message) => {
                let msg = message.as_bytes();
                let take = msg.len().min(u16::MAX as usize);
                w.put_u8(2);
                w.put_u16(take as u16);
                w.put_bytes(&msg[..take]);
            }
        }
    }
    frame(OP_BULK_RESP, id, &w.into_bytes())
}

/// Encodes a server-info response frame.
#[must_use]
pub fn info_response_frame(id: u64, info: &ServerInfo) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(info.dim as u32);
    w.put_u32(info.features as u32);
    w.put_u32(info.levels as u32);
    w.put_u32(info.classes as u32);
    w.put_u64(info.generation);
    w.put_u64(u64::from_str_radix(&info.checksum, 16).unwrap_or(0));
    let backend = info.backend.as_bytes();
    let take = backend.len().min(255);
    w.put_u8(take as u8);
    w.put_bytes(&backend[..take]);
    frame(OP_INFO_RESP, id, &w.into_bytes())
}

/// Encodes a structured error response frame. `throttled` marks
/// admission back-pressure, `overloaded` marks a full pipeline window.
#[must_use]
pub fn error_frame(id: u64, message: &str, throttled: bool, overloaded: bool) -> Vec<u8> {
    let msg = message.as_bytes();
    let take = msg.len().min(u16::MAX as usize);
    let mut w = ByteWriter::new();
    w.put_u8(u8::from(throttled) | (u8::from(overloaded) << 1));
    w.put_u16(take as u16);
    w.put_bytes(&msg[..take]);
    frame(OP_ERROR, id, &w.into_bytes())
}

/// Incremental frame accumulator for the server's non-blocking read
/// loop: bytes stream in via [`FrameBuffer::extend`], complete frames
/// stream out via [`FrameBuffer::next_frame`]. Partial frames (a read
/// timeout mid-header, a payload split across TCP segments) simply wait
/// for more bytes.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily so the buffer does not grow without bound on a
        // long-lived connection.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`FatalFrameError`] when the stream can no longer be trusted
    /// (bad magic, oversized length prefix).
    pub fn next_frame(&mut self) -> Result<Option<(FrameHeader, Vec<u8>)>, FatalFrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        if avail[0] != MAGIC0 || avail[1] != MAGIC1 {
            return Err(FatalFrameError::BadMagic([avail[0], avail[1]]));
        }
        let id = u64::from_le_bytes(avail[4..12].try_into().expect("len 8"));
        let len = u32::from_le_bytes(avail[12..16].try_into().expect("len 4")) as usize;
        if len > MAX_PAYLOAD {
            return Err(FatalFrameError::Oversized { id, len });
        }
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let header = FrameHeader {
            version: avail[2],
            opcode: avail[3],
            id,
            len,
        };
        let payload = avail[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.start += HEADER_LEN + len;
        Ok(Some((header, payload)))
    }
}

/// Decodes a framed request (server side). The payload was already
/// consumed from the stream, so every error here is *answerable*: the
/// `(id, message)` pair renders one error frame and the connection —
/// and its sibling in-flight requests — keeps going.
///
/// # Errors
///
/// `(id, message)` for wrong version, unknown opcode, or a payload
/// that does not parse.
pub fn decode_request(header: &FrameHeader, payload: &[u8]) -> Result<ServerFrame, (u64, String)> {
    if header.version > WIRE_VERSION {
        return Err((
            header.id,
            format!(
                "unsupported wire version {} (this server speaks ≤ {WIRE_VERSION})",
                header.version
            ),
        ));
    }
    match header.opcode {
        OP_CLASSIFY => {
            let mut r = ByteReader::new(payload);
            let parse = |e| (header.id, format!("malformed classify payload: {e}"));
            let flags = r.get_u8().map_err(parse)?;
            let n = r.get_u16().map_err(parse)? as usize;
            let levels = r.get_u16s(n).map_err(parse)?;
            if r.remaining() != 0 {
                return Err((
                    header.id,
                    format!("{} trailing bytes after classify payload", r.remaining()),
                ));
            }
            Ok(ServerFrame::Classify {
                id: header.id,
                levels,
                want_scores: flags & 1 != 0,
            })
        }
        OP_INFO => Ok(ServerFrame::Info { id: header.id }),
        OP_SEARCH => {
            let mut r = ByteReader::new(payload);
            let parse = |e| (header.id, format!("malformed search payload: {e}"));
            let k = r.get_u16().map_err(parse)? as usize;
            if k == 0 {
                return Err((header.id, "search k must be nonzero".to_owned()));
            }
            let n = r.get_u16().map_err(parse)? as usize;
            let levels = r.get_u16s(n).map_err(parse)?;
            if r.remaining() != 0 {
                return Err((
                    header.id,
                    format!("{} trailing bytes after search payload", r.remaining()),
                ));
            }
            Ok(ServerFrame::Search {
                id: header.id,
                levels,
                k,
            })
        }
        OP_BULK => {
            let mut r = ByteReader::new(payload);
            let parse = |e| (header.id, format!("malformed bulk payload: {e}"));
            let flags = r.get_u8().map_err(parse)?;
            let count = r.get_u32().map_err(parse)? as usize;
            if count == 0 {
                return Err((header.id, "bulk frame carries no rows".to_owned()));
            }
            if count > MAX_BULK_ROWS {
                return Err((
                    header.id,
                    format!("bulk frame carries {count} rows; cap is {MAX_BULK_ROWS}"),
                ));
            }
            let width = r.get_u16().map_err(parse)? as usize;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(r.get_u16s(width).map_err(parse)?);
            }
            if r.remaining() != 0 {
                return Err((
                    header.id,
                    format!("{} trailing bytes after bulk payload", r.remaining()),
                ));
            }
            Ok(ServerFrame::BulkClassify {
                id: header.id,
                rows,
                want_scores: flags & 1 != 0,
            })
        }
        op => Err((header.id, format!("unknown opcode 0x{op:02x}"))),
    }
}

/// Decodes a framed response (client side) into the same
/// [`ClassifyResponse`] shape the JSON parser produces, so callers are
/// wire-format agnostic.
///
/// # Errors
///
/// A message for malformed frames.
pub fn decode_response(header: &FrameHeader, payload: &[u8]) -> Result<ClassifyResponse, String> {
    let mut resp = ClassifyResponse {
        id: header.id,
        class: None,
        scores: None,
        matches: None,
        bulk: None,
        info: None,
        swapped: None,
        stats: None,
        error: None,
        xfer_received: None,
        throttled: false,
        overloaded: false,
    };
    let mut r = ByteReader::new(payload);
    match header.opcode {
        OP_CLASS => {
            resp.class = Some(r.get_u32().map_err(|e| e.to_string())? as usize);
        }
        OP_SCORES => {
            resp.class = Some(r.get_u32().map_err(|e| e.to_string())? as usize);
            let n = r.get_u32().map_err(|e| e.to_string())? as usize;
            let mut scores = Vec::with_capacity(n);
            for _ in 0..n {
                scores.push(f64::from_bits(r.get_u64().map_err(|e| e.to_string())?));
            }
            resp.scores = Some(scores);
        }
        OP_INFO_RESP => {
            let err = |e| format!("malformed info frame: {e}");
            let dim = r.get_u32().map_err(err)? as usize;
            let features = r.get_u32().map_err(err)? as usize;
            let levels = r.get_u32().map_err(err)? as usize;
            let classes = r.get_u32().map_err(err)? as usize;
            let generation = r.get_u64().map_err(err)?;
            let checksum = r.get_u64().map_err(err)?;
            let blen = r.get_u8().map_err(err)? as usize;
            let backend = r.get_bytes(blen).map_err(err)?;
            resp.info = Some(ServerInfo {
                backend: String::from_utf8_lossy(backend).into_owned(),
                dim,
                features,
                levels,
                classes,
                generation,
                checksum: checksum_hex(checksum),
                // The v1 binary info frame predates hardened mode and
                // does not carry the flag; binary clients query the
                // JSON `info` request for it (see docs/wire.md).
                hardened: false,
            });
        }
        OP_MATCHES => {
            let err = |e| format!("malformed matches frame: {e}");
            let n = r.get_u32().map_err(err)? as usize;
            let mut matches = Vec::with_capacity(n);
            for _ in 0..n {
                let row = r.get_u32().map_err(err)?;
                let score = f64::from_bits(r.get_u64().map_err(err)?);
                matches.push(SearchMatch { row, score });
            }
            resp.matches = Some(matches);
        }
        OP_BULK_RESP => {
            let err = |e| format!("malformed bulk response frame: {e}");
            let n = r.get_u32().map_err(err)? as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = r.get_u8().map_err(err)?;
                items.push(match tag {
                    0 => BulkOutcome {
                        class: Some(r.get_u32().map_err(err)? as usize),
                        scores: None,
                        error: None,
                    },
                    1 => {
                        let class = r.get_u32().map_err(err)? as usize;
                        let count = r.get_u32().map_err(err)? as usize;
                        let mut scores = Vec::with_capacity(count);
                        for _ in 0..count {
                            scores.push(f64::from_bits(r.get_u64().map_err(err)?));
                        }
                        BulkOutcome {
                            class: Some(class),
                            scores: Some(scores),
                            error: None,
                        }
                    }
                    2 => {
                        let mlen = r.get_u16().map_err(err)? as usize;
                        let msg = r.get_bytes(mlen).map_err(err)?;
                        BulkOutcome {
                            class: None,
                            scores: None,
                            error: Some(String::from_utf8_lossy(msg).into_owned()),
                        }
                    }
                    tag => return Err(format!("unknown bulk item tag {tag}")),
                });
            }
            resp.bulk = Some(items);
        }
        OP_ERROR => {
            let err = |e| format!("malformed error frame: {e}");
            let flags = r.get_u8().map_err(err)?;
            let mlen = r.get_u16().map_err(err)? as usize;
            let msg = r.get_bytes(mlen).map_err(err)?;
            resp.error = Some(String::from_utf8_lossy(msg).into_owned());
            resp.throttled = flags & 1 != 0;
            resp.overloaded = flags & 2 != 0;
        }
        op => return Err(format!("unknown response opcode 0x{op:02x}")),
    }
    Ok(resp)
}

/// Blocking read of one complete frame (client side).
///
/// # Errors
///
/// Propagates I/O errors; EOF mid-frame surfaces as
/// [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<(FrameHeader, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    if header[0] != MAGIC0 || header[1] != MAGIC1 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame magic {:02x} {:02x}", header[0], header[1]),
        ));
    }
    let id = u64::from_le_bytes(header[4..12].try_into().expect("len 8"));
    let len = u32::from_le_bytes(header[12..16].try_into().expect("len 4")) as usize;
    if len > MAX_PAYLOAD {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("oversized frame payload ({len} bytes)"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok((
        FrameHeader {
            version: header[2],
            opcode: header[3],
            id,
            len,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(bytes: &[u8]) -> FrameBuffer {
        let mut fb = FrameBuffer::new();
        fb.extend(bytes);
        fb
    }

    #[test]
    fn classify_roundtrip() {
        let bytes = classify_frame(42, &[0, 3, 65535], true);
        let mut fb = feed(&bytes);
        let (header, payload) = fb.next_frame().unwrap().unwrap();
        assert_eq!(header.version, WIRE_VERSION);
        assert_eq!(header.id, 42);
        let req = decode_request(&header, &payload).unwrap();
        assert_eq!(
            req,
            ServerFrame::Classify {
                id: 42,
                levels: vec![0, 3, 65535],
                want_scores: true,
            }
        );
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn info_roundtrip() {
        let bytes = info_frame(7);
        let mut fb = feed(&bytes);
        let (header, payload) = fb.next_frame().unwrap().unwrap();
        assert_eq!(
            decode_request(&header, &payload),
            Ok(ServerFrame::Info { id: 7 })
        );

        let info = ServerInfo {
            backend: "avx2".to_owned(),
            dim: 10_000,
            features: 64,
            levels: 16,
            classes: 8,
            generation: 3,
            checksum: checksum_hex(0xDEAD_BEEF),
            // The v1 binary frame carries no hardened flag; the decoded
            // struct always reports false.
            hardened: false,
        };
        let bytes = info_response_frame(7, &info);
        let mut fb = feed(&bytes);
        let (header, payload) = fb.next_frame().unwrap().unwrap();
        let resp = decode_response(&header, &payload).unwrap();
        assert_eq!(resp.id, 7);
        assert_eq!(resp.info, Some(info));
    }

    #[test]
    fn responses_roundtrip_bit_identical() {
        let mut fb = feed(&class_frame(1, 3));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let resp = decode_response(&h, &p).unwrap();
        assert_eq!((resp.id, resp.class), (1, Some(3)));

        // Score vectors survive bit-for-bit (raw f64 bits on the wire).
        let scores = [0.5, -1.0, f64::from_bits(0x3FF0_0000_0000_0001)];
        let mut fb = feed(&scores_frame(2, 0, &scores));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let got = decode_response(&h, &p).unwrap().scores.unwrap();
        for (g, w) in got.iter().zip(&scores) {
            assert_eq!(g.to_bits(), w.to_bits());
        }

        let mut fb = feed(&error_frame(3, "query budget exhausted", true, false));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let resp = decode_response(&h, &p).unwrap();
        assert!(resp.throttled && !resp.overloaded);
        assert_eq!(resp.error.as_deref(), Some("query budget exhausted"));

        let mut fb = feed(&error_frame(4, "pipeline window full", false, true));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let resp = decode_response(&h, &p).unwrap();
        assert!(resp.overloaded && !resp.throttled);
    }

    #[test]
    fn search_roundtrip_bit_identical() {
        let bytes = search_frame(21, &[0, 3, 65535], 10);
        let mut fb = feed(&bytes);
        let (header, payload) = fb.next_frame().unwrap().unwrap();
        assert_eq!(
            decode_request(&header, &payload),
            Ok(ServerFrame::Search {
                id: 21,
                levels: vec![0, 3, 65535],
                k: 10,
            })
        );

        // Hits round-trip bit-for-bit (raw f64 bits on the wire).
        let hits = [
            SearchMatch {
                row: 1_000_003,
                score: f64::from_bits(0x3FF0_0000_0000_0001),
            },
            SearchMatch {
                row: 7,
                score: -0.125,
            },
        ];
        let mut fb = feed(&matches_frame(21, &hits));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let resp = decode_response(&h, &p).unwrap();
        assert_eq!(resp.id, 21);
        let got = resp.matches.unwrap();
        assert_eq!(got.len(), 2);
        for (g, w) in got.iter().zip(&hits) {
            assert_eq!(g.row, w.row);
            assert_eq!(g.score.to_bits(), w.score.to_bits());
        }

        // k = 0 is rejected with the id intact.
        let mut w = ByteWriter::new();
        w.put_u16(0);
        w.put_u16(1);
        w.put_u16s(&[1]);
        let mut fb = feed(&frame(OP_SEARCH, 6, &w.into_bytes()));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let (id, msg) = decode_request(&h, &p).unwrap_err();
        assert_eq!(id, 6);
        assert!(msg.contains("nonzero"));
    }

    #[test]
    fn bulk_roundtrip_bit_identical() {
        use crate::batcher::BulkItem;

        let rows: Vec<&[u16]> = vec![&[0, 3, 7], &[1, 1, 1], &[65535, 0, 2]];
        let bytes = bulk_classify_frame(13, &rows, true);
        let mut fb = feed(&bytes);
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let req = decode_request(&h, &p).unwrap();
        assert_eq!(
            req,
            ServerFrame::BulkClassify {
                id: 13,
                rows: rows.iter().map(|r| r.to_vec()).collect(),
                want_scores: true,
            }
        );

        let items = vec![
            BulkItem::Class(4),
            BulkItem::ClassWithScores(1, vec![0.5, f64::from_bits(0x3FF0_0000_0000_0001)]),
            BulkItem::Rejected("level 9 at feature 0 out of range (M = 8)".to_owned()),
        ];
        let mut fb = feed(&bulk_response_frame(13, &items));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let resp = decode_response(&h, &p).unwrap();
        assert_eq!(resp.id, 13);
        let got = resp.bulk.unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].class, Some(4));
        assert!(got[0].scores.is_none() && got[0].error.is_none());
        assert_eq!(got[1].class, Some(1));
        let scores = got[1].scores.as_ref().unwrap();
        assert_eq!(scores[1].to_bits(), 0x3FF0_0000_0000_0001);
        assert!(got[2].error.as_deref().unwrap().contains("out of range"));

        // Zero rows and over-cap row counts are answerable errors.
        let mut w = ByteWriter::new();
        w.put_u8(0);
        w.put_u32(0);
        w.put_u16(1);
        let mut fb = feed(&frame(OP_BULK, 9, &w.into_bytes()));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let (id, msg) = decode_request(&h, &p).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("no rows"));

        let mut w = ByteWriter::new();
        w.put_u8(0);
        w.put_u32(MAX_BULK_ROWS as u32 + 1);
        w.put_u16(1);
        let mut fb = feed(&frame(OP_BULK, 10, &w.into_bytes()));
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let (id, msg) = decode_request(&h, &p).unwrap_err();
        assert_eq!(id, 10);
        assert!(msg.contains("cap is"));
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let bytes = classify_frame(9, &[1, 2, 3, 4], false);
        let mut fb = FrameBuffer::new();
        for chunk in bytes.chunks(3) {
            assert!(fb.next_frame().unwrap().is_none() || chunk.is_empty());
            fb.extend(chunk);
        }
        let (header, payload) = fb.next_frame().unwrap().unwrap();
        assert!(matches!(
            decode_request(&header, &payload),
            Ok(ServerFrame::Classify { id: 9, .. })
        ));
    }

    #[test]
    fn pipelined_frames_parse_in_sequence() {
        let mut bytes = classify_frame(1, &[1], false);
        bytes.extend(info_frame(2));
        bytes.extend(classify_frame(3, &[2], true));
        let mut fb = feed(&bytes);
        let mut ids = Vec::new();
        while let Some((h, _)) = fb.next_frame().unwrap() {
            ids.push(h.id);
        }
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = classify_frame(1, &[1], false);
        bytes[0] = b'{';
        let mut fb = feed(&bytes);
        assert_eq!(
            fb.next_frame(),
            Err(FatalFrameError::BadMagic([b'{', MAGIC1]))
        );
    }

    #[test]
    fn oversized_length_prefix_is_fatal_with_id() {
        let mut bytes = classify_frame(77, &[1], false);
        bytes[12..16].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let mut fb = feed(&bytes);
        assert_eq!(
            fb.next_frame(),
            Err(FatalFrameError::Oversized {
                id: 77,
                len: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn unknown_opcode_and_wrong_version_are_answerable() {
        let mut bytes = classify_frame(5, &[1], false);
        bytes[3] = 0x7E; // unknown opcode
        let mut fb = feed(&bytes);
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let (id, msg) = decode_request(&h, &p).unwrap_err();
        assert_eq!(id, 5);
        assert!(msg.contains("opcode"));

        let mut bytes = classify_frame(6, &[1], false);
        bytes[2] = WIRE_VERSION + 1;
        let mut fb = feed(&bytes);
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let (id, msg) = decode_request(&h, &p).unwrap_err();
        assert_eq!(id, 6);
        assert!(msg.contains("version"));
    }

    #[test]
    fn truncated_payload_fields_are_answerable() {
        // Declared length is honored by framing, but the classify
        // payload inside claims more levels than it carries.
        let mut w = ByteWriter::new();
        w.put_u8(0);
        w.put_u16(10); // claims 10 levels…
        w.put_u16s(&[1, 2]); // …carries 2
        let bytes = frame(OP_CLASSIFY, 8, &w.into_bytes());
        let mut fb = feed(&bytes);
        let (h, p) = fb.next_frame().unwrap().unwrap();
        let (id, msg) = decode_request(&h, &p).unwrap_err();
        assert_eq!(id, 8);
        assert!(msg.contains("malformed classify payload"));
    }

    #[test]
    fn buffer_compacts_consumed_prefix() {
        let mut fb = FrameBuffer::new();
        for i in 0..5000u64 {
            fb.extend(&classify_frame(i, &[1, 2, 3], false));
            let (h, _) = fb.next_frame().unwrap().unwrap();
            assert_eq!(h.id, i);
        }
        // The consumed prefix must not accumulate forever.
        assert!(fb.buf.len() < 16 * 1024, "buffer grew to {}", fb.buf.len());
    }

    #[test]
    fn read_frame_blocking_roundtrip() {
        let bytes = classify_frame(11, &[4, 5], false);
        let mut cursor = &bytes[..];
        let (header, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(header.id, 11);
        assert!(decode_request(&header, &payload).is_ok());

        // EOF mid-frame is UnexpectedEof, not a panic.
        let mut cursor = &bytes[..7];
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }
}
