//! Per-connection admission control for the inference oracle.
//!
//! HDLock's residual attack surface is the *oracle itself*: the paper's
//! lock probe recovers everything it needs from `N + 1` queries — a
//! base row plus one single-feature deviation per feature — and the
//! query-bounded adversary of the robustness experiments
//! (`hdc_attack::robust`) is only stopped when the budget undercuts
//! that need. The admission controller enforces exactly those
//! semantics per connection:
//!
//! * **Cumulative query budget** — a
//!   [`hdc_attack::QueryBudget`], the same counter
//!   `ThrottledOracle` uses in the attack experiments, so "budget `B`
//!   stops the `N + 1`-query probe" transfers verbatim from the attack
//!   crate's tests to the server. Unlike `ThrottledOracle` (which
//!   poisons answers, degrading legitimate bulk users silently), the
//!   server rejects with a **structured throttle error** so honest
//!   clients can back off.
//! * **Token-bucket rate limit** — sustained queries/second with a
//!   burst allowance, bounding how fast any client can sweep.
//! * **Feature-sweep counter** — the lock probe's signature is a run of
//!   queries within Hamming distance ≤ 1 (in level space) of some base
//!   row the attacker chose. The detector keeps a bounded ring of
//!   recent *anchor* rows; a query near any anchor counts as a probe
//!   (and refreshes that anchor, so a base row being swept stays
//!   resident however long the sweep runs). Organic traffic (rows
//!   differing in many features) never trips it. The ring is bounded,
//!   so an attacker can evade by interleaving [`ANCHOR_RING`] distinct
//!   junk rows per probe — but every one of those burns the same
//!   cumulative query budget, which is the backstop.
//!
//! Budgets are per connection, so one throttled client leaves every
//! other connection untouched.

use std::collections::VecDeque;
use std::time::Instant;

use hdc_attack::QueryBudget;

/// Anchor rows remembered per connection by the sweep detector.
pub const ANCHOR_RING: usize = 32;

/// Admission thresholds; `u64::MAX` / `0.0` disable a dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Total classify queries a connection may issue
    /// ([`QueryBudget`] semantics). `u64::MAX` = unlimited.
    pub query_budget: u64,
    /// Sustained token refill rate (queries/second). `0.0` disables
    /// rate limiting.
    pub rate_per_sec: f64,
    /// Token-bucket capacity (burst size) when rate limiting is on.
    pub burst: u64,
    /// Probe-shaped queries (Hamming ≤ 1 from a remembered anchor row;
    /// see the module docs) a connection may issue. `u64::MAX` =
    /// unlimited.
    pub sweep_budget: u64,
}

impl Default for AdmissionConfig {
    /// Everything unlimited — admission control is opt-in.
    fn default() -> Self {
        AdmissionConfig {
            query_budget: u64::MAX,
            rate_per_sec: 0.0,
            burst: 1,
            sweep_budget: u64::MAX,
        }
    }
}

/// Why a query was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleReason {
    /// The cumulative per-connection budget is spent.
    BudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// The token bucket is empty (sustained rate exceeded).
    RateExceeded,
    /// Too many probe-shaped queries (feature-sweep pattern).
    SweepDetected {
        /// The configured sweep budget.
        budget: u64,
    },
}

impl std::fmt::Display for ThrottleReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThrottleReason::BudgetExhausted { budget } => {
                write!(f, "query budget exhausted ({budget} per connection)")
            }
            ThrottleReason::RateExceeded => write!(f, "query rate exceeded, retry later"),
            ThrottleReason::SweepDetected { budget } => write!(
                f,
                "feature-sweep pattern exceeded probe budget ({budget} per connection)"
            ),
        }
    }
}

/// Per-connection admission state. One instance per accepted
/// connection, owned by its handler thread.
#[derive(Debug)]
pub struct ConnectionAdmission {
    config: AdmissionConfig,
    budget: QueryBudget,
    sweeps: QueryBudget,
    tokens: f64,
    last_refill: Instant,
    /// Recent anchor rows, most-recently-hit first (see module docs).
    anchors: VecDeque<Vec<u16>>,
}

impl ConnectionAdmission {
    /// Fresh state with a full token bucket.
    #[must_use]
    pub fn new(config: &AdmissionConfig) -> Self {
        ConnectionAdmission {
            config: *config,
            budget: QueryBudget::new(config.query_budget),
            sweeps: QueryBudget::new(config.sweep_budget),
            tokens: config.burst.max(1) as f64,
            last_refill: Instant::now(),
            anchors: VecDeque::new(),
        }
    }

    /// Decides one classify query. `Err` carries the throttle reason;
    /// rejected queries still count against the cumulative budget (a
    /// throttled client cannot wait out its budget).
    ///
    /// # Errors
    ///
    /// The [`ThrottleReason`] to report to the client.
    pub fn admit(&mut self, levels: &[u16]) -> Result<(), ThrottleReason> {
        // Cumulative budget first: ThrottledOracle semantics — the
        // first `budget` queries of the connection, full stop.
        if self.config.query_budget != u64::MAX && !self.budget.admit() {
            return Err(ThrottleReason::BudgetExhausted {
                budget: self.config.query_budget,
            });
        }
        // Token bucket (sustained rate).
        if self.config.rate_per_sec > 0.0 {
            let now = Instant::now();
            let elapsed = now.duration_since(self.last_refill).as_secs_f64();
            self.last_refill = now;
            self.tokens = (self.tokens + elapsed * self.config.rate_per_sec)
                .min(self.config.burst.max(1) as f64);
            if self.tokens < 1.0 {
                return Err(ThrottleReason::RateExceeded);
            }
            self.tokens -= 1.0;
        }
        // Feature-sweep counter: one feature away from a remembered
        // anchor → probe. The hit anchor moves to the front so a swept
        // base row stays resident while uninvolved anchors age out of
        // the ring. Exact repeats of an anchor (a client polling the
        // same row) refresh it but are *not* probes — the paper's
        // sweep is made of single-feature deviations, and resending
        // one row reveals nothing new.
        if self.config.sweep_budget != u64::MAX {
            let hit =
                self.anchors.iter().enumerate().find_map(|(pos, anchor)| {
                    probe_distance(anchor, levels).map(|diffs| (pos, diffs))
                });
            match hit {
                Some((pos, diffs)) => {
                    let anchor = self.anchors.remove(pos).expect("position is in range");
                    self.anchors.push_front(anchor);
                    if diffs == 1 && !self.sweeps.admit() {
                        return Err(ThrottleReason::SweepDetected {
                            budget: self.config.sweep_budget,
                        });
                    }
                }
                None => {
                    self.anchors.push_front(levels.to_vec());
                    self.anchors.truncate(ANCHOR_RING);
                }
            }
        }
        Ok(())
    }

    /// Queries recorded against the cumulative budget so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.budget.served()
    }
}

/// Number of features where `row` deviates from `anchor`, when that
/// number is ≤ 1 — `Some(1)` is the shape of every deviation query in
/// the paper's `N + 1` lock probe, `Some(0)` an exact repeat. `None`
/// means the rows are unrelated (or differently sized).
fn probe_distance(anchor: &[u16], row: &[u16]) -> Option<usize> {
    if anchor.len() != row.len() {
        return None;
    }
    let mut diffs = 0usize;
    for (a, b) in anchor.iter().zip(row) {
        if a != b {
            diffs += 1;
            if diffs > 1 {
                return None;
            }
        }
    }
    Some(diffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_admits_everything() {
        let mut adm = ConnectionAdmission::new(&AdmissionConfig::default());
        for i in 0..10_000u16 {
            assert!(adm.admit(&[i % 7, 1, 2]).is_ok());
        }
    }

    #[test]
    fn cumulative_budget_throttles_after_budget() {
        let mut adm = ConnectionAdmission::new(&AdmissionConfig {
            query_budget: 3,
            ..AdmissionConfig::default()
        });
        // Diverse rows: the sweep detector must not be what fires.
        assert!(adm.admit(&[0, 1, 2, 3]).is_ok());
        assert!(adm.admit(&[3, 2, 1, 0]).is_ok());
        assert!(adm.admit(&[1, 1, 1, 1]).is_ok());
        assert_eq!(
            adm.admit(&[2, 2, 2, 2]).unwrap_err(),
            ThrottleReason::BudgetExhausted { budget: 3 }
        );
        // Still throttled — rejected queries do not refund budget.
        assert!(adm.admit(&[0, 1, 2, 3]).is_err());
        assert_eq!(adm.served(), 5);
    }

    #[test]
    fn sweep_detector_counts_probe_shaped_rows_only() {
        let mut adm = ConnectionAdmission::new(&AdmissionConfig {
            sweep_budget: 4,
            ..AdmissionConfig::default()
        });
        // Organic rows: pairwise far apart (every pair differs in all
        // eight features), never counted.
        for s in 0..20u16 {
            let row = vec![s + 1; 8];
            assert!(adm.admit(&row).is_ok(), "organic row {s}");
        }
        // The lock probe: a base row plus single-feature deviations.
        let base = vec![0u16; 8];
        assert!(adm.admit(&base).is_ok()); // becomes an anchor
        for i in 0..4 {
            let mut probe = base.clone();
            probe[i] = 3;
            assert!(adm.admit(&probe).is_ok(), "probe {i} within budget");
        }
        let mut probe = base.clone();
        probe[4] = 3;
        assert_eq!(
            adm.admit(&probe).unwrap_err(),
            ThrottleReason::SweepDetected { budget: 4 }
        );
    }

    #[test]
    fn sweep_detector_is_not_evaded_by_a_junk_first_row() {
        // Anchoring only on the connection's first row would let an
        // attacker send one throwaway query, then probe a different
        // base unobserved. The anchor ring catches the probe's own
        // base instead.
        let mut adm = ConnectionAdmission::new(&AdmissionConfig {
            sweep_budget: 2,
            ..AdmissionConfig::default()
        });
        let junk = vec![9u16; 8];
        assert!(adm.admit(&junk).is_ok());
        let base = vec![0u16; 8];
        assert!(adm.admit(&base).is_ok());
        for i in 0..2 {
            let mut probe = base.clone();
            probe[i] = 3;
            assert!(adm.admit(&probe).is_ok(), "probe {i} within budget");
        }
        let mut probe = base.clone();
        probe[2] = 3;
        assert_eq!(
            adm.admit(&probe).unwrap_err(),
            ThrottleReason::SweepDetected { budget: 2 }
        );
    }

    #[test]
    fn swept_anchor_stays_resident_while_others_age_out() {
        // A long-running sweep keeps refreshing its base anchor, so it
        // survives more than ANCHOR_RING interleaved organic rows.
        let mut adm = ConnectionAdmission::new(&AdmissionConfig {
            sweep_budget: 8,
            ..AdmissionConfig::default()
        });
        let base = vec![0u16; 8];
        assert!(adm.admit(&base).is_ok());
        let mut counted = 0u64;
        for round in 0..3u16 {
            // A probe refreshes the base anchor…
            let mut probe = base.clone();
            probe[usize::from(round)] = 3;
            assert!(adm.admit(&probe).is_ok());
            counted += 1;
            // …so ANCHOR_RING − 1 organic rows (all pairwise far
            // apart, across rounds too) cannot evict it.
            for s in 0..(ANCHOR_RING - 1) as u16 {
                let row = vec![100 * (round + 1) + s + 1; 8];
                assert!(adm.admit(&row).is_ok());
            }
        }
        assert_eq!(adm.sweeps.served(), counted);
    }

    #[test]
    fn rate_limit_empties_and_refills() {
        let mut adm = ConnectionAdmission::new(&AdmissionConfig {
            rate_per_sec: 50.0,
            burst: 3,
            ..AdmissionConfig::default()
        });
        let row = [1u16, 2, 3];
        assert!(adm.admit(&row).is_ok());
        assert!(adm.admit(&row).is_ok());
        assert!(adm.admit(&row).is_ok());
        assert_eq!(adm.admit(&row).unwrap_err(), ThrottleReason::RateExceeded);
        // Tokens come back with time.
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(adm.admit(&row).is_ok());
    }

    #[test]
    fn probe_shape_definition() {
        assert_eq!(probe_distance(&[0, 0, 0], &[0, 0, 0]), Some(0));
        assert_eq!(probe_distance(&[0, 0, 0], &[0, 5, 0]), Some(1));
        assert_eq!(probe_distance(&[0, 0, 0], &[1, 5, 0]), None);
        assert_eq!(probe_distance(&[0, 0], &[0, 0, 0]), None);
    }

    #[test]
    fn exact_repeats_are_not_probes() {
        // A client polling one stable row must never be throttled as a
        // sweeper: repeats refresh the anchor but consume no sweep
        // budget.
        let mut adm = ConnectionAdmission::new(&AdmissionConfig {
            sweep_budget: 2,
            ..AdmissionConfig::default()
        });
        let row = vec![4u16; 8];
        for i in 0..20 {
            assert!(adm.admit(&row).is_ok(), "repeat {i}");
        }
        assert_eq!(adm.sweeps.served(), 0);
        // Single-feature deviations still count.
        let mut probe = row.clone();
        probe[0] = 7;
        assert!(adm.admit(&probe).is_ok());
        assert_eq!(adm.sweeps.served(), 1);
    }

    #[test]
    fn throttle_reasons_render() {
        assert!(ThrottleReason::BudgetExhausted { budget: 5 }
            .to_string()
            .contains('5'));
        assert!(ThrottleReason::RateExceeded.to_string().contains("rate"));
        assert!(ThrottleReason::SweepDetected { budget: 2 }
            .to_string()
            .contains("sweep"));
    }
}
