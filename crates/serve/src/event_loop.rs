//! The epoll event-loop core: one nonblocking thread multiplexes every
//! connection ([`CoreKind::Event`](crate::server::CoreKind), Linux
//! only, the platform default).
//!
//! ## Shape
//!
//! ```text
//!                  ┌──────────────── event loop thread ────────────────┐
//!   listener ──────┤ accept burst → Conn { read buf │ state │ out buf } │
//!   10k+ sockets ──┤ readiness-driven reads → dispatch → batch queue    │
//!                  │ completions (via waker pipe) → render → out buf    │
//!                  └──────────▲──────────────────────────┬─────────────┘
//!                             │ waker.wake()             │ jobs
//!                  ┌──────────┴─────────┐   ┌────────────▼───────────┐
//!                  │ admin executor     │   │ batch worker pool      │
//!                  │ (reload/rekey/     │   │ (fused classify/search │
//!                  │  xfer commit)      │   │  batches)              │
//!                  └────────────────────┘   └────────────────────────┘
//! ```
//!
//! Per connection the loop keeps a read accumulator (frames may split
//! at any byte boundary across wakeups), the negotiated wire mode, the
//! in-flight id set and a bounded write backlog. Interest is re-armed
//! per tick: reads pause at a backlog high watermark (a slow-reading
//! client stalls only itself — TCP back-pressure reaches it, siblings
//! keep flowing) and resume at the low watermark; `EPOLLOUT` is armed
//! only while unflushed bytes remain. A read-fairness cap (at most
//! `READ_ROUNDS` chunks per readiness event) keeps one firehose
//! connection from starving the rest; level-triggered epoll re-reports
//! whatever remains.
//!
//! Batch workers and the admin executor run on their own threads and
//! hand results back through one shared channel, tagged with the
//! connection token, then nudge the loop through the self-pipe
//! [`Waker`]. Request policy — validation, admission, pipeline window,
//! bulk preparation, admin routing — is the same
//! `dispatch_incoming` the threaded core uses, so both cores answer
//! byte-for-byte identically.
//!
//! ## Divergences from the threaded core (hardening, not semantics)
//!
//! * A JSON line longer than `MAX_JSON_LINE` is answered with an
//!   error and the connection closed (the threaded core would buffer it
//!   without bound).
//! * Accepts past `max_connections`, and accepts during drain, are
//!   answered with a structured JSON `"overloaded"` error before the
//!   socket closes, instead of languishing in the accept queue.
//! * An offloaded admin operation (reload/rekey/commit) does not block
//!   the connection's read side; its response is matched by id like any
//!   pipelined response.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use hdc_model::ClassifySession;
use hdc_store::ModelRegistry;

use crate::batcher::{
    worker_loop, BatchConfig, BatchQueue, CompletionSink, Delivery, Job, JobKind,
};
use crate::epoll::{raise_nofile_limit, PollEvent, Poller, Waker, EV_READ, EV_WRITE};
use crate::metrics::{elapsed_us, ServeMetrics};
use crate::protocol;
use crate::server::{
    dispatch_incoming, incoming_from_json, next_frame_step, registry_worker_loop,
    render_completion, render_error, ConnOutbox, CoreStats, FrameStep, Incoming, InflightSet,
    RegistryBrain, RegistryCtx, RegistryServeConfig, RequestBrain, ServeStats, SessionBrain,
};
use crate::wire::{self, WireMode};

/// epoll_wait timeout — the shutdown-flag poll cadence, mirroring the
/// threaded core's read-timeout tick.
const POLL_TICK_MS: i32 = 20;
/// Reads pause once a connection's unflushed output reaches this.
const HIGH_WATERMARK: usize = 256 * 1024;
/// Paused reads resume once the backlog drains below this.
const LOW_WATERMARK: usize = 64 * 1024;
/// Bytes already written are compacted out of the buffer at this point.
const COMPACT_THRESHOLD: usize = 64 * 1024;
/// A JSON request line may grow this large before the connection is
/// closed with an error (hardening; no legitimate request approaches
/// it — the binary wire's frame cap is 1 MiB too).
const MAX_JSON_LINE: usize = 1024 * 1024;
/// Read-fairness cap: chunks pulled per readiness event.
const READ_ROUNDS: usize = 8;
/// Size of one read chunk.
const READ_CHUNK: usize = 64 * 1024;
/// How long a graceful drain waits for in-flight work and unflushed
/// responses before closing what remains.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// One offloaded admin operation; its rendered response line comes back
/// through the completion channel as a `Delivery::Raw` for `token`.
struct AdminTask<'env> {
    token: u64,
    run: Box<dyn FnOnce() -> String + Send + 'env>,
}

/// Everything the loop hands to per-connection dispatch.
struct LoopEnv<'l, 'env> {
    queue: &'env BatchQueue,
    window: usize,
    max_connections: usize,
    done_tx: mpsc::Sender<(u64, Delivery)>,
    admin_tx: mpsc::Sender<AdminTask<'env>>,
    waker: Arc<Waker>,
    stats: &'l CoreStats<'env>,
}

/// One multiplexed connection's state machine.
struct Conn<B> {
    stream: TcpStream,
    fd: i32,
    brain: B,
    /// `None` until the first byte negotiates the wire format.
    mode: Option<WireMode>,
    /// Binary-mode read accumulator (frames split anywhere).
    frames: wire::FrameBuffer,
    /// JSON-mode read accumulator (lines split anywhere).
    line: Vec<u8>,
    /// Unflushed response bytes; `out[out_pos..]` awaits the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Ids of classify/bulk requests queued or running.
    inflight: InflightSet,
    /// Offloaded admin operations awaiting their response line.
    inflight_admin: usize,
    /// Interest bits currently registered with the poller.
    interest: u32,
    /// Read side finished (EOF, fatal frame fault, or drain); the
    /// connection stays up until in-flight responses flush.
    read_closed: bool,
    /// Write side failed; the connection is removed immediately.
    dead: bool,
    /// With telemetry on, when the connection was accepted — consumed
    /// by the sniff-stage histogram once the first byte negotiates the
    /// wire mode.
    accepted_at: Option<Instant>,
}

impl<B> Conn<B> {
    fn new(stream: TcpStream, fd: i32, brain: B, accepted_at: Option<Instant>) -> Self {
        Conn {
            stream,
            fd,
            brain,
            mode: None,
            frames: wire::FrameBuffer::new(),
            line: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            inflight: InflightSet::new(),
            inflight_admin: 0,
            interest: EV_READ,
            read_closed: false,
            dead: false,
            accepted_at,
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// The event loop's view of one connection during dispatch; implements
/// the shared [`ConnOutbox`] seam over split borrows of [`Conn`].
struct EventOutbox<'c, 'env> {
    mode: WireMode,
    out: &'c mut Vec<u8>,
    inflight: &'c mut InflightSet,
    inflight_admin: &'c mut usize,
    queue: &'env BatchQueue,
    done_tx: &'c mpsc::Sender<(u64, Delivery)>,
    waker: &'c Arc<Waker>,
    token: u64,
    admin_tx: &'c mpsc::Sender<AdminTask<'env>>,
    window: usize,
    stats: &'c CoreStats<'env>,
}

impl<'env> ConnOutbox<'env> for EventOutbox<'_, 'env> {
    fn mode(&self) -> WireMode {
        self.mode
    }

    fn window(&self) -> usize {
        self.window
    }

    fn stats(&self) -> &CoreStats<'env> {
        self.stats
    }

    fn send_inline(&mut self, bytes: Vec<u8>) {
        self.out.extend_from_slice(&bytes);
    }

    fn inflight_contains(&self, id: u64) -> bool {
        self.inflight.contains(&id)
    }

    fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    fn inflight_insert(&mut self, id: u64) {
        self.inflight.insert(id);
    }

    fn inflight_remove(&mut self, id: u64) {
        self.inflight.remove(&id);
    }

    fn enqueue(&mut self, id: u64, kind: JobKind) {
        self.queue.push(Job {
            id,
            kind,
            tx: CompletionSink::EventLoop {
                tx: self.done_tx.clone(),
                token: self.token,
                waker: Arc::clone(self.waker),
            },
            enqueued_at: self.stats.metrics.is_some().then(Instant::now),
        });
    }

    fn offload_admin(&mut self, run: Box<dyn FnOnce() -> String + Send + 'env>) {
        *self.inflight_admin += 1;
        // The executor only exits once every sender is gone; a failed
        // send means the server is already tearing down.
        let _ = self.admin_tx.send(AdminTask {
            token: self.token,
            run,
        });
    }
}

/// Runs the shared dispatcher for one parsed request against this
/// connection. Returns `false` on a fatal fault (stop reading).
fn dispatch_on<'env, B: RequestBrain<'env>>(
    conn: &mut Conn<B>,
    token: u64,
    env: &LoopEnv<'_, 'env>,
    incoming: Incoming,
) -> bool {
    let mut outbox = EventOutbox {
        mode: conn.mode.expect("dispatch only after wire negotiation"),
        out: &mut conn.out,
        inflight: &mut conn.inflight,
        inflight_admin: &mut conn.inflight_admin,
        queue: env.queue,
        done_tx: &env.done_tx,
        waker: &env.waker,
        token,
        admin_tx: &env.admin_tx,
        window: env.window,
        stats: env.stats,
    };
    dispatch_incoming(&mut outbox, &mut conn.brain, incoming)
}

/// Feeds freshly read bytes through the binary frame accumulator.
fn feed_binary<'env, B: RequestBrain<'env>>(
    conn: &mut Conn<B>,
    token: u64,
    env: &LoopEnv<'_, 'env>,
    bytes: &[u8],
) {
    conn.frames.extend(bytes);
    loop {
        match next_frame_step(&mut conn.frames) {
            FrameStep::Dispatch(incoming) => {
                if !dispatch_on(conn, token, env, incoming) {
                    conn.read_closed = true;
                    return;
                }
            }
            FrameStep::NeedMore => return,
            FrameStep::CloseSilent => {
                conn.read_closed = true;
                return;
            }
            FrameStep::CloseAfter(fatal) => {
                let _ = dispatch_on(conn, token, env, fatal);
                conn.read_closed = true;
                return;
            }
        }
    }
}

/// Feeds freshly read bytes through the JSON line accumulator.
fn feed_json<'env, B: RequestBrain<'env>>(
    conn: &mut Conn<B>,
    token: u64,
    env: &LoopEnv<'_, 'env>,
    bytes: &[u8],
) {
    conn.line.extend_from_slice(bytes);
    loop {
        let Some(pos) = conn.line.iter().position(|&b| b == b'\n') else {
            if conn.line.len() > MAX_JSON_LINE {
                let bytes = render_error(
                    WireMode::Json,
                    0,
                    &format!("request line exceeds the {MAX_JSON_LINE} byte cap"),
                    false,
                    false,
                );
                conn.out.extend_from_slice(&bytes);
                conn.read_closed = true;
            }
            return;
        };
        let line_bytes: Vec<u8> = conn.line.drain(..=pos).collect();
        let Ok(text) = std::str::from_utf8(&line_bytes) else {
            // Matches the threaded core: invalid UTF-8 ends the read
            // side without a response (there is no trustworthy line to
            // answer).
            conn.read_closed = true;
            return;
        };
        if text.trim().is_empty() {
            continue;
        }
        let incoming = incoming_from_json(text);
        if !dispatch_on(conn, token, env, incoming) {
            conn.read_closed = true;
            return;
        }
    }
}

/// Pulls up to [`READ_ROUNDS`] chunks off a readable connection and
/// dispatches whatever complete requests they contain.
fn handle_readable<'env, B: RequestBrain<'env>>(
    conn: &mut Conn<B>,
    token: u64,
    env: &LoopEnv<'_, 'env>,
    buf: &mut [u8],
) {
    for _ in 0..READ_ROUNDS {
        if conn.read_closed || conn.dead || conn.backlog() >= HIGH_WATERMARK {
            break;
        }
        let n = match conn.stream.read(buf) {
            Ok(0) => {
                // Client hung up (any partial frame/line is theirs);
                // in-flight requests still get their responses.
                conn.read_closed = true;
                break;
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        };
        // First byte negotiates the wire format: binary frames open
        // with the magic 0xB1, which no JSON line starts with.
        if conn.mode.is_none() {
            conn.mode = Some(if buf[0] == wire::MAGIC0 {
                WireMode::Binary
            } else {
                WireMode::Json
            });
            if let (Some(m), Some(accepted)) = (env.stats.metrics, conn.accepted_at.take()) {
                m.sniff_us.record(elapsed_us(accepted));
            }
        }
        match conn.mode.expect("mode set above") {
            WireMode::Binary => feed_binary(conn, token, env, &buf[..n]),
            WireMode::Json => feed_json(conn, token, env, &buf[..n]),
        }
        if n < buf.len() {
            // Socket likely drained; level-triggered epoll re-reports
            // any racing remainder next tick.
            break;
        }
    }
}

/// Writes as much pending output as the socket accepts right now.
fn flush_out<B>(conn: &mut Conn<B>) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos >= COMPACT_THRESHOLD {
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
}

/// Applies one worker/admin completion to its connection.
fn apply_delivery<B>(conn: &mut Conn<B>, delivery: Delivery) {
    match delivery {
        Delivery::Done(done) => {
            conn.inflight.remove(&done.id);
            // Completions only exist for dispatched requests, which
            // only exist after negotiation.
            let mode = conn.mode.unwrap_or(WireMode::Json);
            let bytes = render_completion(mode, &done);
            conn.out.extend_from_slice(&bytes);
        }
        Delivery::Raw(bytes) => {
            // `Raw` through the loop channel is exclusively an
            // offloaded admin result (every other inline response is
            // appended directly by the loop).
            conn.inflight_admin = conn.inflight_admin.saturating_sub(1);
            conn.out.extend_from_slice(&bytes);
        }
    }
}

/// Flushes, re-arms interest (with read-pause hysteresis between the
/// watermarks), and decides whether the connection is finished.
/// Returns `true` when the connection must be removed.
fn settle<B>(
    conn: &mut Conn<B>,
    poller: &Poller,
    token: u64,
    metrics: Option<&ServeMetrics>,
) -> bool {
    if !conn.dead {
        let start = match metrics {
            Some(_) if conn.backlog() > 0 => Some(Instant::now()),
            _ => None,
        };
        flush_out(conn);
        if let (Some(m), Some(start)) = (metrics, start) {
            m.drain_us.record(elapsed_us(start));
        }
    }
    let backlog = conn.backlog();
    let finished =
        conn.read_closed && conn.inflight.is_empty() && conn.inflight_admin == 0 && backlog == 0;
    if conn.dead || finished {
        poller.remove(conn.fd);
        return true;
    }
    let was_reading = conn.interest & EV_READ != 0;
    let read_ok = !conn.read_closed
        && if was_reading {
            backlog < HIGH_WATERMARK
        } else {
            backlog < LOW_WATERMARK
        };
    if let Some(m) = metrics {
        // A still-open read side losing EV_READ means the backlog just
        // crossed the high watermark.
        if was_reading && !read_ok && !conn.read_closed {
            m.backlog_high_watermark.inc();
        }
    }
    let mut want = 0u32;
    if read_ok {
        want |= EV_READ;
    }
    if backlog > 0 {
        want |= EV_WRITE;
    }
    if want != conn.interest {
        if poller.modify(conn.fd, token, want).is_err() {
            poller.remove(conn.fd);
            return true;
        }
        conn.interest = want;
    }
    false
}

/// Answers a connection the server cannot take (capacity or drain) with
/// a best-effort structured overload line, then closes it. Rejected
/// connections are not counted in [`ServeStats::connections`].
fn reject_connection(stream: &TcpStream, draining: bool, max_connections: usize) {
    let msg = if draining {
        "server draining; connection rejected".to_owned()
    } else {
        format!("server at connection capacity ({max_connections} connections); retry later")
    };
    let line = protocol::overload_response(0, &msg);
    let _ = stream.set_nodelay(true);
    let _ = (&*stream).write_all(line.as_bytes());
}

/// The loop itself, generic over the brain factory (one brain per
/// connection). Returns the number of accepted connections.
fn run_event_loop<'env, B, F>(
    listener: &TcpListener,
    make_brain: F,
    env: &LoopEnv<'_, 'env>,
    done_rx: &mpsc::Receiver<(u64, Delivery)>,
    shutdown: &AtomicBool,
) -> io::Result<u64>
where
    B: RequestBrain<'env>,
    F: Fn() -> B,
{
    listener.set_nonblocking(true)?;
    // Best-effort headroom for the sockets themselves plus pipes,
    // listener and whatever the process already holds.
    let _ = raise_nofile_limit(env.max_connections as u64 * 2 + 64);

    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, EV_READ)?;
    poller.add(env.waker.read_fd(), TOKEN_WAKER, EV_READ)?;

    let mut conns: HashMap<u64, Conn<B>> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut accepted = 0u64;
    let mut events: Vec<PollEvent> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK];
    let mut draining = false;
    let mut drain_deadline = Instant::now();

    loop {
        if !draining && shutdown.load(Ordering::SeqCst) {
            // Graceful drain: stop reading everywhere, answer what is
            // in flight, flush, then exit (or give up at the deadline).
            draining = true;
            drain_deadline = Instant::now() + DRAIN_DEADLINE;
            for (&token, conn) in conns.iter_mut() {
                conn.read_closed = true;
                touched.push(token);
            }
        }
        if draining && (conns.is_empty() || Instant::now() >= drain_deadline) {
            break;
        }

        events.clear();
        let wait_start = env.stats.metrics.map(|_| Instant::now());
        poller.wait(&mut events, POLL_TICK_MS)?;
        if let (Some(m), Some(start)) = (env.stats.metrics, wait_start) {
            m.epoll_wait_us.record(elapsed_us(start));
        }
        for event in &events {
            match event.token {
                TOKEN_LISTENER => loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if draining || conns.len() >= env.max_connections {
                                if let Some(m) = env.stats.metrics {
                                    m.overload_rejects.inc();
                                }
                                reject_connection(&stream, draining, env.max_connections);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let fd = stream.as_raw_fd();
                            let token = next_token;
                            next_token += 1;
                            if poller.add(fd, token, EV_READ).is_err() {
                                continue; // drop; client sees a close
                            }
                            accepted += 1;
                            env.stats.enter_connection();
                            let accepted_at = env.stats.metrics.map(|_| Instant::now());
                            conns.insert(token, Conn::new(stream, fd, make_brain(), accepted_at));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        // Transient accept failures (EMFILE, aborted
                        // handshake): retry next tick rather than
                        // killing the server.
                        Err(_) => break,
                    }
                },
                TOKEN_WAKER => {
                    // Pipe first, then the channel — the ordering that
                    // makes the waker's dedup flag race-free.
                    env.waker.drain();
                    let mut drained = 0u64;
                    while let Ok((token, delivery)) = done_rx.try_recv() {
                        drained += 1;
                        // Completions for connections that died
                        // mid-flight are discarded.
                        if let Some(conn) = conns.get_mut(&token) {
                            apply_delivery(conn, delivery);
                            touched.push(token);
                        }
                    }
                    if let Some(m) = env.stats.metrics {
                        m.wakeup_batch.record(drained);
                    }
                }
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if event.writable() {
                            flush_out(conn);
                        }
                        if event.readable() && !conn.read_closed && !conn.dead {
                            handle_readable(conn, token, env, &mut buf);
                        }
                        touched.push(token);
                    }
                }
            }
        }
        for token in touched.drain(..) {
            let remove = match conns.get_mut(&token) {
                Some(conn) => settle(conn, &poller, token, env.stats.metrics),
                None => false, // settled (and removed) earlier this tick
            };
            if remove {
                conns.remove(&token);
                env.stats.leave_connection();
            }
        }
    }
    // Connections cut off by the drain deadline still count as closed.
    for _ in conns.drain() {
        env.stats.leave_connection();
    }
    Ok(accepted)
}

/// Drains offloaded admin operations on a dedicated thread, feeding the
/// rendered response lines back to the loop. Exits when every sender is
/// gone.
fn admin_executor<'env>(
    rx: mpsc::Receiver<AdminTask<'env>>,
    done_tx: mpsc::Sender<(u64, Delivery)>,
    waker: Arc<Waker>,
) {
    while let Ok(task) = rx.recv() {
        let line = (task.run)();
        let _ = done_tx.send((task.token, Delivery::Raw(line.into_bytes())));
        waker.wake();
    }
}

/// [`crate::serve`] on the epoll core: serves one fixed session until
/// `shutdown` is raised. See [`crate::server::serve`] for the protocol
/// contract — the cores are byte-identical.
///
/// # Errors
///
/// Propagates listener/poller configuration errors; per-connection I/O
/// errors only terminate that connection.
pub fn serve<S: ClassifySession>(
    listener: TcpListener,
    session: &S,
    config: &BatchConfig,
    shutdown: &AtomicBool,
    metrics: Option<&ServeMetrics>,
) -> io::Result<ServeStats> {
    let queue = BatchQueue::new();
    let stats = CoreStats::new(metrics);
    let served = AtomicU64::new(0);

    let connections = std::thread::scope(|scope| -> io::Result<u64> {
        let waker = Arc::new(Waker::new()?);
        let (done_tx, done_rx) = mpsc::channel::<(u64, Delivery)>();
        let (admin_tx, admin_rx) = mpsc::channel::<AdminTask<'_>>();
        let workers: Vec<_> = (0..config.workers.max(1))
            .map(|_| scope.spawn(|| worker_loop(&queue, session, config, &served, metrics)))
            .collect();
        let admin_worker = scope.spawn({
            let done_tx = done_tx.clone();
            let waker = Arc::clone(&waker);
            move || admin_executor(admin_rx, done_tx, waker)
        });
        let env = LoopEnv {
            queue: &queue,
            window: config.pipeline_window.max(1),
            max_connections: config.max_connections.max(1),
            done_tx,
            admin_tx,
            waker,
            stats: &stats,
        };
        let outcome = run_event_loop(
            &listener,
            || SessionBrain {
                session,
                metrics: stats.metrics,
            },
            &env,
            &done_rx,
            shutdown,
        );
        // Dropping the env drops the admin sender, letting the executor
        // exit; the queue closes after so workers drain the backlog.
        drop(env);
        let _ = admin_worker.join();
        queue.close();
        for w in workers {
            let _ = w.join();
        }
        outcome
    })?;

    Ok(ServeStats {
        requests: stats.requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: stats.throttled.load(Ordering::Relaxed),
    })
}

/// [`crate::serve_registry`] on the epoll core: serves a
/// [`ModelRegistry`] until `shutdown` is raised, honoring admin
/// requests (including streamed snapshot transfers) and admission
/// control. See [`crate::server::serve_registry`] for the protocol
/// contract and the trust-boundary notes.
///
/// # Errors
///
/// Propagates listener/poller configuration errors; per-connection I/O
/// errors only terminate that connection.
pub fn serve_registry(
    listener: TcpListener,
    registry: &ModelRegistry,
    config: &RegistryServeConfig,
    shutdown: &AtomicBool,
    metrics: Option<&ServeMetrics>,
) -> io::Result<ServeStats> {
    let queue = BatchQueue::new();
    let stats = CoreStats::new(metrics);
    let served = AtomicU64::new(0);
    let ctx = RegistryCtx {
        registry,
        admission: &config.admission,
        stats: &stats,
    };

    let connections = std::thread::scope(|scope| -> io::Result<u64> {
        let waker = Arc::new(Waker::new()?);
        let (done_tx, done_rx) = mpsc::channel::<(u64, Delivery)>();
        let (admin_tx, admin_rx) = mpsc::channel::<AdminTask<'_>>();
        let workers: Vec<_> = (0..config.batch.workers.max(1))
            .map(|_| {
                scope.spawn(|| {
                    registry_worker_loop(&queue, registry, &config.batch, &served, metrics)
                })
            })
            .collect();
        let admin_worker = scope.spawn({
            let done_tx = done_tx.clone();
            let waker = Arc::clone(&waker);
            move || admin_executor(admin_rx, done_tx, waker)
        });
        let env = LoopEnv {
            queue: &queue,
            window: config.batch.pipeline_window.max(1),
            max_connections: config.batch.max_connections.max(1),
            done_tx,
            admin_tx,
            waker,
            stats: &stats,
        };
        let outcome = run_event_loop(
            &listener,
            || RegistryBrain::new(&ctx),
            &env,
            &done_rx,
            shutdown,
        );
        drop(env);
        let _ = admin_worker.join();
        queue.close();
        for w in workers {
            let _ = w.join();
        }
        outcome
    })?;

    Ok(ServeStats {
        requests: stats.requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: stats.throttled.load(Ordering::Relaxed),
    })
}
