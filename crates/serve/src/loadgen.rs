//! Closed-loop load generator for the classify server.
//!
//! Opens `connections` parallel TCP connections, each keeping up to
//! `pipeline` requests in flight with random (seeded) quantized rows,
//! and reports aggregate throughput plus per-request latency
//! percentiles. Requests can travel as line-JSON (the default) or as
//! binary frames ([`crate::wire`]); responses are matched to requests
//! by id, so out-of-order completions from the server's multiplexed
//! writer are handled naturally. With `pipeline == 1` every connection
//! degenerates to the classic synchronous round-trip loop — that is
//! the *JSON serial* baseline `BENCH_search.json` tracks.
//!
//! With `connections × pipeline` in the same ballpark as the server's
//! `max_batch`, the batching queue fuses the concurrent requests into
//! full batch-kernel calls.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use hdc_model::LatencyStats;
use hypervec::HvRng;

use crate::protocol;
use crate::wire::{self, WireMode};

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Parallel connections (each a closed loop of round trips).
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Seed for the per-connection row generators.
    pub seed: u64,
    /// Wire format to speak ([`WireMode::Json`] by default).
    pub wire: WireMode,
    /// In-flight requests per connection (1 = serial request/response).
    pub pipeline: usize,
    /// `Some(k)` switches every request to a top-k search (`search`
    /// JSON requests / `SEARCH` frames); a response without a match
    /// list counts as an error.
    pub search_k: Option<usize>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 32,
            requests_per_connection: 1000,
            seed: 2022,
            wire: WireMode::Json,
            pipeline: 1,
            search_k: None,
        }
    }
}

/// Aggregate result of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Successful classify responses.
    pub total_requests: u64,
    /// Error responses or transport failures.
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_secs: f64,
    /// Successful requests per second.
    pub requests_per_sec: f64,
    /// Per-request round-trip latency distribution.
    pub latency: LatencyStats,
}

/// Runs the load generator against a serving address.
///
/// `n_features` / `m_levels` must match the served model (the generator
/// crafts uniformly random valid rows).
///
/// # Errors
///
/// Propagates connection failures; per-request protocol errors are
/// counted in [`LoadReport::errors`] instead.
///
/// # Panics
///
/// Panics if `connections == 0`, `pipeline == 0`, or no request ever
/// succeeds.
pub fn run(
    addr: SocketAddr,
    n_features: usize,
    m_levels: usize,
    config: &LoadgenConfig,
) -> std::io::Result<LoadReport> {
    assert!(config.connections > 0, "need at least one connection");
    assert!(config.pipeline > 0, "pipeline depth must be at least 1");
    let start = Instant::now();
    let per_conn: Vec<std::io::Result<(Vec<u64>, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|c| {
                scope.spawn(move || {
                    connection_loop(
                        addr,
                        n_features,
                        m_levels,
                        config,
                        config.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        c as u64,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for result in per_conn {
        let (lats, errs) = result?;
        latencies.extend(lats);
        errors += errs;
    }
    let total_requests = latencies.len() as u64;
    let latency = LatencyStats::from_micros(latencies)
        .expect("load generation produced at least one successful request");
    Ok(LoadReport {
        total_requests,
        errors,
        elapsed_secs,
        requests_per_sec: total_requests as f64 / elapsed_secs,
        latency,
    })
}

/// The transport half of one loadgen connection: format-specific
/// request writing and response reading over the same socket pair.
enum Transport {
    Json {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
        line: String,
    },
    Binary {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    },
}

impl Transport {
    fn connect(addr: SocketAddr, wire_mode: WireMode) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(match wire_mode {
            WireMode::Json => Transport::Json {
                reader,
                writer,
                line: String::new(),
            },
            WireMode::Binary => Transport::Binary { reader, writer },
        })
    }

    /// Buffers one classify — or, with `search_k`, top-k search —
    /// request (call [`Transport::flush`] before blocking on
    /// responses).
    fn send(&mut self, id: u64, levels: &[u16], search_k: Option<usize>) -> std::io::Result<()> {
        match (self, search_k) {
            (Transport::Json { writer, .. }, None) => {
                writer.write_all(protocol::request_line(id, levels, false).as_bytes())
            }
            (Transport::Json { writer, .. }, Some(k)) => {
                writer.write_all(protocol::search_request_line(id, levels, k).as_bytes())
            }
            (Transport::Binary { writer, .. }, None) => {
                writer.write_all(&wire::classify_frame(id, levels, false))
            }
            (Transport::Binary { writer, .. }, Some(k)) => {
                writer.write_all(&wire::search_frame(id, levels, k))
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Json { writer, .. } | Transport::Binary { writer, .. } => writer.flush(),
        }
    }

    /// Blocks for the next response; returns `(id, ok)` — `id` is
    /// `None` when the response was unparseable and carries no usable
    /// id (a sentinel value would collide with real request ids). With
    /// `want_matches`, a response without a match list is not ok: the
    /// server answered a search with something else.
    fn recv(&mut self, want_matches: bool) -> std::io::Result<(Option<u64>, bool)> {
        let ok_of = |resp: &protocol::ClassifyResponse| {
            resp.error.is_none() && (!want_matches || resp.matches.is_some())
        };
        match self {
            Transport::Json { reader, line, .. } => {
                line.clear();
                if reader.read_line(line)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-run",
                    ));
                }
                match protocol::parse_response(line) {
                    Ok(resp) => Ok((Some(resp.id), ok_of(&resp))),
                    Err(_) => Ok((None, false)),
                }
            }
            Transport::Binary { reader, .. } => {
                let (header, payload) = wire::read_frame(reader)?;
                match wire::decode_response(&header, &payload) {
                    Ok(resp) => Ok((Some(resp.id), ok_of(&resp))),
                    Err(_) => Ok((Some(header.id), false)),
                }
            }
        }
    }
}

/// One connection's pipelined closed loop; returns (per-request
/// latencies µs, error count). Keeps up to `config.pipeline` requests
/// in flight, matching responses to send timestamps by id.
fn connection_loop(
    addr: SocketAddr,
    n_features: usize,
    m_levels: usize,
    config: &LoadgenConfig,
    seed: u64,
    id_base: u64,
) -> std::io::Result<(Vec<u64>, u64)> {
    let mut transport = Transport::connect(addr, config.wire)?;
    let mut rng = HvRng::from_seed(seed);
    let requests = config.requests_per_connection;
    let mut latencies = Vec::with_capacity(requests);
    let mut errors = 0u64;
    let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(config.pipeline);
    let mut sent = 0usize;
    let mut received = 0usize;
    // The loop advances on *responses received*, not on matched ids:
    // the server answers every request exactly once, so counting
    // responses terminates even if one arrives with an id we cannot
    // match (it is counted as an error; its stale `sent_at` entry is
    // simply never read again). Keying progress on `sent_at` emptying
    // would hang forever on a single unmatched response.
    while received < requests {
        // Fill the window…
        while sent < requests && sent - received < config.pipeline {
            let levels: Vec<u16> = (0..n_features)
                .map(|_| rng.index(m_levels) as u16)
                .collect();
            let id = id_base.wrapping_mul(1_000_000_007) + sent as u64;
            sent += 1;
            sent_at.insert(id, Instant::now());
            transport.send(id, &levels, config.search_k)?;
        }
        // …then drain one response (more arrive opportunistically on
        // the next loop iterations).
        transport.flush()?;
        let (id, ok) = transport.recv(config.search_k.is_some())?;
        received += 1;
        match id.and_then(|id| sent_at.remove(&id)) {
            Some(at) if ok => {
                latencies.push(u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
            Some(_) => errors += 1,
            // Unparseable, or an id we never sent (or already
            // accounted): server-side anomaly; count it so it cannot
            // hide.
            None => errors += 1,
        }
    }
    Ok((latencies, errors))
}
