//! Closed-loop load generator for the classify server.
//!
//! Opens `connections` parallel TCP connections, each issuing
//! synchronous request/response round trips with random (seeded)
//! quantized rows, and reports aggregate throughput plus per-request
//! latency percentiles. With `connections` in the same ballpark as the
//! server's `max_batch`, the batching queue fuses the concurrent
//! requests into full batch-kernel calls.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use hdc_model::LatencyStats;
use hypervec::HvRng;

use crate::protocol;

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Parallel connections (each a closed loop of round trips).
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Seed for the per-connection row generators.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 32,
            requests_per_connection: 1000,
            seed: 2022,
        }
    }
}

/// Aggregate result of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Successful classify responses.
    pub total_requests: u64,
    /// Error responses or transport failures.
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_secs: f64,
    /// Successful requests per second.
    pub requests_per_sec: f64,
    /// Per-request round-trip latency distribution.
    pub latency: LatencyStats,
}

/// Runs the load generator against a serving address.
///
/// `n_features` / `m_levels` must match the served model (the generator
/// crafts uniformly random valid rows).
///
/// # Errors
///
/// Propagates connection failures; per-request protocol errors are
/// counted in [`LoadReport::errors`] instead.
///
/// # Panics
///
/// Panics if `connections == 0` or no request ever succeeds.
pub fn run(
    addr: SocketAddr,
    n_features: usize,
    m_levels: usize,
    config: &LoadgenConfig,
) -> std::io::Result<LoadReport> {
    assert!(config.connections > 0, "need at least one connection");
    let start = Instant::now();
    let per_conn: Vec<std::io::Result<(Vec<u64>, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|c| {
                scope.spawn(move || {
                    connection_loop(
                        addr,
                        n_features,
                        m_levels,
                        config.requests_per_connection,
                        config.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        c as u64,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for result in per_conn {
        let (lats, errs) = result?;
        latencies.extend(lats);
        errors += errs;
    }
    let total_requests = latencies.len() as u64;
    let latency = LatencyStats::from_micros(latencies)
        .expect("load generation produced at least one successful request");
    Ok(LoadReport {
        total_requests,
        errors,
        elapsed_secs,
        requests_per_sec: total_requests as f64 / elapsed_secs,
        latency,
    })
}

/// One connection's closed loop; returns (per-request latencies µs,
/// error count).
fn connection_loop(
    addr: SocketAddr,
    n_features: usize,
    m_levels: usize,
    requests: usize,
    seed: u64,
    id_base: u64,
) -> std::io::Result<(Vec<u64>, u64)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut rng = HvRng::from_seed(seed);
    let mut latencies = Vec::with_capacity(requests);
    let mut errors = 0u64;
    let mut line = String::new();
    for i in 0..requests {
        let levels: Vec<u16> = (0..n_features)
            .map(|_| rng.index(m_levels) as u16)
            .collect();
        let id = id_base.wrapping_mul(1_000_000_007) + i as u64;
        let request = protocol::request_line(id, &levels, false);
        let sent = Instant::now();
        writer.write_all(request.as_bytes())?;
        writer.flush()?;
        line.clear();
        reader.read_line(&mut line)?;
        let micros = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
        match protocol::parse_response(&line) {
            Ok(resp) if resp.error.is_none() && resp.id == id => latencies.push(micros),
            _ => errors += 1,
        }
    }
    Ok((latencies, errors))
}
