//! Closed-loop load generator for the classify server.
//!
//! Opens `connections` parallel TCP connections, each keeping up to
//! `pipeline` requests in flight with random (seeded) quantized rows,
//! and reports aggregate throughput plus per-request latency
//! percentiles. Requests can travel as line-JSON (the default) or as
//! binary frames ([`crate::wire`]); responses are matched to requests
//! by id, so out-of-order completions from the server's multiplexed
//! writer are handled naturally. With `pipeline == 1` every connection
//! degenerates to the classic synchronous round-trip loop — that is
//! the *JSON serial* baseline `BENCH_search.json` tracks.
//!
//! With `connections × pipeline` in the same ballpark as the server's
//! `max_batch`, the batching queue fuses the concurrent requests into
//! full batch-kernel calls.
//!
//! The closed-loop [`run`] spends one thread per connection, which
//! tops out around a thousand sockets. [`run_fan_in`] is the
//! high-concurrency mode: one epoll-driven thread (Linux only)
//! multiplexes *all* connections nonblockingly — thousands of
//! pipelined sockets, optional connect/disconnect churn — and reports
//! the same [`LoadReport`]. It is the client half of the 10k-connection
//! acceptance run in `BENCH_search.json`'s `serving.concurrency`
//! section.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use hdc_model::LatencyStats;
use hypervec::HvRng;

use crate::protocol;
use crate::wire::{self, WireMode};

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Parallel connections (each a closed loop of round trips).
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Seed for the per-connection row generators.
    pub seed: u64,
    /// Wire format to speak ([`WireMode::Json`] by default).
    pub wire: WireMode,
    /// In-flight requests per connection (1 = serial request/response).
    pub pipeline: usize,
    /// `Some(k)` switches every request to a top-k search (`search`
    /// JSON requests / `SEARCH` frames); a response without a match
    /// list counts as an error.
    pub search_k: Option<usize>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 32,
            requests_per_connection: 1000,
            seed: 2022,
            wire: WireMode::Json,
            pipeline: 1,
            search_k: None,
        }
    }
}

/// Aggregate result of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Successful classify responses.
    pub total_requests: u64,
    /// Error responses or transport failures.
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_secs: f64,
    /// Successful requests per second.
    pub requests_per_sec: f64,
    /// Per-request round-trip latency distribution.
    pub latency: LatencyStats,
}

/// Runs the load generator against a serving address.
///
/// `n_features` / `m_levels` must match the served model (the generator
/// crafts uniformly random valid rows).
///
/// # Errors
///
/// Propagates connection failures; per-request protocol errors are
/// counted in [`LoadReport::errors`] instead.
///
/// # Panics
///
/// Panics if `connections == 0`, `pipeline == 0`, or no request ever
/// succeeds.
pub fn run(
    addr: SocketAddr,
    n_features: usize,
    m_levels: usize,
    config: &LoadgenConfig,
) -> std::io::Result<LoadReport> {
    assert!(config.connections > 0, "need at least one connection");
    assert!(config.pipeline > 0, "pipeline depth must be at least 1");
    let start = Instant::now();
    let per_conn: Vec<std::io::Result<(Vec<u64>, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|c| {
                scope.spawn(move || {
                    connection_loop(
                        addr,
                        n_features,
                        m_levels,
                        config,
                        config.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        c as u64,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for result in per_conn {
        let (lats, errs) = result?;
        latencies.extend(lats);
        errors += errs;
    }
    let total_requests = latencies.len() as u64;
    let latency = LatencyStats::from_micros(latencies)
        .expect("load generation produced at least one successful request");
    Ok(LoadReport {
        total_requests,
        errors,
        elapsed_secs,
        requests_per_sec: total_requests as f64 / elapsed_secs,
        latency,
    })
}

/// The transport half of one loadgen connection: format-specific
/// request writing and response reading over the same socket pair.
enum Transport {
    Json {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
        line: String,
    },
    Binary {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    },
}

impl Transport {
    fn connect(addr: SocketAddr, wire_mode: WireMode) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(match wire_mode {
            WireMode::Json => Transport::Json {
                reader,
                writer,
                line: String::new(),
            },
            WireMode::Binary => Transport::Binary { reader, writer },
        })
    }

    /// Buffers one classify — or, with `search_k`, top-k search —
    /// request (call [`Transport::flush`] before blocking on
    /// responses).
    fn send(&mut self, id: u64, levels: &[u16], search_k: Option<usize>) -> std::io::Result<()> {
        match (self, search_k) {
            (Transport::Json { writer, .. }, None) => {
                writer.write_all(protocol::request_line(id, levels, false).as_bytes())
            }
            (Transport::Json { writer, .. }, Some(k)) => {
                writer.write_all(protocol::search_request_line(id, levels, k).as_bytes())
            }
            (Transport::Binary { writer, .. }, None) => {
                writer.write_all(&wire::classify_frame(id, levels, false))
            }
            (Transport::Binary { writer, .. }, Some(k)) => {
                writer.write_all(&wire::search_frame(id, levels, k))
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Json { writer, .. } | Transport::Binary { writer, .. } => writer.flush(),
        }
    }

    /// Blocks for the next response; returns `(id, ok)` — `id` is
    /// `None` when the response was unparseable and carries no usable
    /// id (a sentinel value would collide with real request ids). With
    /// `want_matches`, a response without a match list is not ok: the
    /// server answered a search with something else.
    fn recv(&mut self, want_matches: bool) -> std::io::Result<(Option<u64>, bool)> {
        let ok_of = |resp: &protocol::ClassifyResponse| {
            resp.error.is_none() && (!want_matches || resp.matches.is_some())
        };
        match self {
            Transport::Json { reader, line, .. } => {
                line.clear();
                if reader.read_line(line)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-run",
                    ));
                }
                match protocol::parse_response(line) {
                    Ok(resp) => Ok((Some(resp.id), ok_of(&resp))),
                    Err(_) => Ok((None, false)),
                }
            }
            Transport::Binary { reader, .. } => {
                let (header, payload) = wire::read_frame(reader)?;
                match wire::decode_response(&header, &payload) {
                    Ok(resp) => Ok((Some(resp.id), ok_of(&resp))),
                    Err(_) => Ok((Some(header.id), false)),
                }
            }
        }
    }
}

/// One connection's pipelined closed loop; returns (per-request
/// latencies µs, error count). Keeps up to `config.pipeline` requests
/// in flight, matching responses to send timestamps by id.
fn connection_loop(
    addr: SocketAddr,
    n_features: usize,
    m_levels: usize,
    config: &LoadgenConfig,
    seed: u64,
    id_base: u64,
) -> std::io::Result<(Vec<u64>, u64)> {
    let mut transport = Transport::connect(addr, config.wire)?;
    let mut rng = HvRng::from_seed(seed);
    let requests = config.requests_per_connection;
    let mut latencies = Vec::with_capacity(requests);
    let mut errors = 0u64;
    let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(config.pipeline);
    let mut sent = 0usize;
    let mut received = 0usize;
    // The loop advances on *responses received*, not on matched ids:
    // the server answers every request exactly once, so counting
    // responses terminates even if one arrives with an id we cannot
    // match (it is counted as an error; its stale `sent_at` entry is
    // simply never read again). Keying progress on `sent_at` emptying
    // would hang forever on a single unmatched response.
    while received < requests {
        // Fill the window…
        while sent < requests && sent - received < config.pipeline {
            let levels: Vec<u16> = (0..n_features)
                .map(|_| rng.index(m_levels) as u16)
                .collect();
            let id = id_base.wrapping_mul(1_000_000_007) + sent as u64;
            sent += 1;
            sent_at.insert(id, Instant::now());
            transport.send(id, &levels, config.search_k)?;
        }
        // …then drain one response (more arrive opportunistically on
        // the next loop iterations).
        transport.flush()?;
        let (id, ok) = transport.recv(config.search_k.is_some())?;
        received += 1;
        match id.and_then(|id| sent_at.remove(&id)) {
            Some(at) if ok => {
                latencies.push(u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
            Some(_) => errors += 1,
            // Unparseable, or an id we never sent (or already
            // accounted): server-side anomaly; count it so it cannot
            // hide.
            None => errors += 1,
        }
    }
    Ok((latencies, errors))
}

/// Parameters for the open-loop fan-in mode ([`run_fan_in`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanInConfig {
    /// Concurrent connections, all multiplexed from one thread.
    pub connections: usize,
    /// Requests issued per connection (across churn reconnects).
    /// Must stay below `2^20` — ids pack as `conn << 20 | seq`.
    pub requests_per_connection: usize,
    /// In-flight requests per connection.
    pub pipeline: usize,
    /// Wire format to speak.
    pub wire: WireMode,
    /// Seed for the per-connection row generators.
    pub seed: u64,
    /// `Some(n)`: every `n` responses a connection drains its window,
    /// disconnects and reconnects — steady accept-path churn while the
    /// rest of the fleet keeps serving.
    pub churn_every: Option<usize>,
    /// `Some(k)` switches every request to a top-k search.
    pub search_k: Option<usize>,
}

impl Default for FanInConfig {
    fn default() -> Self {
        FanInConfig {
            connections: 1000,
            requests_per_connection: 20,
            pipeline: 8,
            wire: WireMode::Binary,
            seed: 2022,
            churn_every: None,
            search_k: None,
        }
    }
}

/// Runs the open-loop fan-in load generator: every connection is a
/// nonblocking socket on one epoll loop, so one client thread can hold
/// 10k+ concurrent pipelined connections against the server.
///
/// # Errors
///
/// Propagates connection failures and servers that close or stall
/// mid-run (no progress for 30 s); per-request protocol errors are
/// counted in [`LoadReport::errors`]. On non-Linux platforms, returns
/// [`std::io::ErrorKind::Unsupported`].
///
/// # Panics
///
/// Panics if `connections == 0`, `pipeline == 0`,
/// `requests_per_connection ≥ 2^20`, or no request ever succeeds.
pub fn run_fan_in(
    addr: SocketAddr,
    n_features: usize,
    m_levels: usize,
    config: &FanInConfig,
) -> std::io::Result<LoadReport> {
    assert!(config.connections > 0, "need at least one connection");
    assert!(config.pipeline > 0, "pipeline depth must be at least 1");
    assert!(
        config.requests_per_connection < (1 << 20),
        "per-connection request count must fit the id packing"
    );
    #[cfg(target_os = "linux")]
    {
        fan_in::run(addr, n_features, m_levels, config)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (addr, n_features, m_levels);
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "fan-in load generation needs the Linux epoll client",
        ))
    }
}

#[cfg(target_os = "linux")]
mod fan_in {
    use super::{FanInConfig, LoadReport};
    use crate::epoll::{raise_nofile_limit, PollEvent, Poller, EV_READ, EV_WRITE};
    use crate::protocol;
    use crate::wire::{self, WireMode};
    use hdc_model::LatencyStats;
    use hypervec::HvRng;
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    /// Abort when the server makes no progress for this long.
    const STALL_DEADLINE: Duration = Duration::from_secs(30);
    const POLL_TICK_MS: i32 = 100;
    const READ_CHUNK: usize = 64 * 1024;

    /// One multiplexed client connection.
    struct FanConn {
        stream: TcpStream,
        fd: i32,
        rng: HvRng,
        sent: usize,
        received: usize,
        frames: wire::FrameBuffer,
        line: Vec<u8>,
        out: Vec<u8>,
        out_pos: usize,
        interest: u32,
        /// Response count that triggers the next churn reconnect.
        next_churn: usize,
        /// Window draining ahead of a churn reconnect: no new sends.
        reconnecting: bool,
    }

    impl FanConn {
        fn connect(addr: SocketAddr, seed: u64, next_churn: usize) -> io::Result<FanConn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            let fd = stream.as_raw_fd();
            Ok(FanConn {
                stream,
                fd,
                rng: HvRng::from_seed(seed),
                sent: 0,
                received: 0,
                frames: wire::FrameBuffer::new(),
                line: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                interest: EV_READ,
                next_churn,
                reconnecting: false,
            })
        }

        fn backlog(&self) -> usize {
            self.out.len() - self.out_pos
        }
    }

    /// Per-run bookkeeping shared by both wire formats.
    struct Tally {
        sent_at: HashMap<u64, Instant>,
        latencies: Vec<u64>,
        errors: u64,
    }

    impl Tally {
        /// Accounts one response; `id: None` means unparseable.
        fn response(&mut self, id: Option<u64>, ok: bool) {
            match id.and_then(|id| self.sent_at.remove(&id)) {
                Some(at) if ok => self
                    .latencies
                    .push(u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX)),
                Some(_) | None => self.errors += 1,
            }
        }
    }

    /// Queues requests until the pipeline window or request budget is
    /// full.
    fn fill_window(
        conn: &mut FanConn,
        c: usize,
        n_features: usize,
        m_levels: usize,
        config: &FanInConfig,
        tally: &mut Tally,
    ) {
        while !conn.reconnecting
            && conn.sent < config.requests_per_connection
            && conn.sent - conn.received < config.pipeline
        {
            let levels: Vec<u16> = (0..n_features)
                .map(|_| conn.rng.index(m_levels) as u16)
                .collect();
            let id = (c as u64) << 20 | conn.sent as u64;
            conn.sent += 1;
            tally.sent_at.insert(id, Instant::now());
            match (config.wire, config.search_k) {
                (WireMode::Json, None) => conn
                    .out
                    .extend_from_slice(protocol::request_line(id, &levels, false).as_bytes()),
                (WireMode::Json, Some(k)) => conn
                    .out
                    .extend_from_slice(protocol::search_request_line(id, &levels, k).as_bytes()),
                (WireMode::Binary, None) => conn
                    .out
                    .extend_from_slice(&wire::classify_frame(id, &levels, false)),
                (WireMode::Binary, Some(k)) => conn
                    .out
                    .extend_from_slice(&wire::search_frame(id, &levels, k)),
            }
        }
    }

    /// Writes whatever the socket accepts. Errors are fatal for the run
    /// (the server should never drop a loadgen connection).
    fn flush(conn: &mut FanConn) -> io::Result<()> {
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "server stopped accepting bytes mid-run",
                    ))
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        }
        Ok(())
    }

    /// Reads and accounts every complete response currently available.
    fn drain_responses(
        conn: &mut FanConn,
        config: &FanInConfig,
        tally: &mut Tally,
        buf: &mut [u8],
    ) -> io::Result<()> {
        let want_matches = config.search_k.is_some();
        loop {
            let n = match conn.stream.read(buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-run",
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            match config.wire {
                WireMode::Binary => {
                    conn.frames.extend(&buf[..n]);
                    loop {
                        match conn.frames.next_frame() {
                            Ok(Some((header, payload))) => {
                                conn.received += 1;
                                match wire::decode_response(&header, &payload) {
                                    Ok(resp) => tally.response(
                                        Some(resp.id),
                                        resp.error.is_none()
                                            && (!want_matches || resp.matches.is_some()),
                                    ),
                                    Err(_) => tally.response(Some(header.id), false),
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    "server sent an unframeable response",
                                ))
                            }
                        }
                    }
                }
                WireMode::Json => {
                    conn.line.extend_from_slice(&buf[..n]);
                    while let Some(pos) = conn.line.iter().position(|&b| b == b'\n') {
                        let line_bytes: Vec<u8> = conn.line.drain(..=pos).collect();
                        conn.received += 1;
                        let parsed = std::str::from_utf8(&line_bytes)
                            .ok()
                            .and_then(|text| protocol::parse_response(text).ok());
                        match parsed {
                            Some(resp) => tally.response(
                                Some(resp.id),
                                resp.error.is_none() && (!want_matches || resp.matches.is_some()),
                            ),
                            None => tally.response(None, false),
                        }
                    }
                }
            }
            if n < buf.len() {
                return Ok(());
            }
        }
    }

    pub(super) fn run(
        addr: SocketAddr,
        n_features: usize,
        m_levels: usize,
        config: &FanInConfig,
    ) -> io::Result<LoadReport> {
        let _ = raise_nofile_limit(config.connections as u64 * 2 + 64);
        let poller = Poller::new()?;
        let start = Instant::now();
        let seed_of = |c: usize| config.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let first_churn = config.churn_every.unwrap_or(usize::MAX);
        let mut tally = Tally {
            sent_at: HashMap::with_capacity(config.connections * config.pipeline),
            latencies: Vec::with_capacity(config.connections * config.requests_per_connection),
            errors: 0,
        };

        // Serial blocking connects (loopback-fast), then nonblocking.
        let mut conns: Vec<Option<FanConn>> = Vec::with_capacity(config.connections);
        for c in 0..config.connections {
            let mut conn = FanConn::connect(addr, seed_of(c), first_churn)?;
            fill_window(&mut conn, c, n_features, m_levels, config, &mut tally);
            poller.add(conn.fd, c as u64, EV_READ)?;
            conns.push(Some(conn));
        }

        let mut done = 0usize;
        let mut events: Vec<PollEvent> = Vec::new();
        let mut buf = vec![0u8; READ_CHUNK];
        let mut last_progress = Instant::now();
        let mut total_received = 0u64;

        // Initial flush after registration so nothing is lost if a
        // socket would have been writable before its poller add.
        for conn in conns.iter_mut().flatten() {
            flush(conn)?;
        }

        while done < config.connections {
            events.clear();
            poller.wait(&mut events, POLL_TICK_MS)?;
            for event in &events {
                let c = event.token as usize;
                let Some(conn) = conns.get_mut(c).and_then(Option::as_mut) else {
                    continue;
                };
                if event.writable() {
                    flush(conn)?;
                }
                if event.readable() {
                    drain_responses(conn, config, &mut tally, &mut buf)?;
                }

                // Schedule churn: stop sending, drain the window, then
                // reconnect with the remaining request budget.
                if conn.received >= conn.next_churn && conn.sent < config.requests_per_connection {
                    conn.reconnecting = true;
                }
                if conn.reconnecting && conn.sent == conn.received && conn.backlog() == 0 {
                    poller.remove(conn.fd);
                    let (sent, received, next_churn) = (
                        conn.sent,
                        conn.received,
                        conn.received + config.churn_every.unwrap_or(usize::MAX),
                    );
                    let mut fresh = FanConn::connect(addr, seed_of(c) ^ sent as u64, next_churn)?;
                    fresh.sent = sent;
                    fresh.received = received;
                    poller.add(fresh.fd, c as u64, EV_READ)?;
                    *conn = fresh;
                }

                fill_window(conn, c, n_features, m_levels, config, &mut tally);
                flush(conn)?;

                if conn.received == config.requests_per_connection {
                    poller.remove(conn.fd);
                    conns[c] = None;
                    done += 1;
                    continue;
                }
                let want = EV_READ | if conn.backlog() > 0 { EV_WRITE } else { 0 };
                if want != conn.interest {
                    poller.modify(conn.fd, c as u64, want)?;
                    conn.interest = want;
                }
            }

            let received_now: u64 = tally.latencies.len() as u64 + tally.errors;
            if received_now > total_received {
                total_received = received_now;
                last_progress = Instant::now();
            } else if last_progress.elapsed() > STALL_DEADLINE {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "fan-in stalled: {done}/{} connections finished, \
                         {received_now} responses, none for {STALL_DEADLINE:?}",
                        config.connections
                    ),
                ));
            }
        }

        let elapsed_secs = start.elapsed().as_secs_f64();
        let total_requests = tally.latencies.len() as u64;
        let latency = LatencyStats::from_micros(tally.latencies)
            .expect("fan-in produced at least one successful request");
        Ok(LoadReport {
            total_requests,
            errors: tally.errors,
            elapsed_secs,
            requests_per_sec: total_requests as f64 / elapsed_secs,
            latency,
        })
    }
}
