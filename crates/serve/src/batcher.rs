//! The request-batching queue and its worker pool.
//!
//! Connection handlers enqueue one [`Job`] per request; worker threads
//! pop *batches* — up to `max_batch` jobs, or whatever has accumulated
//! after `max_wait` — and run one fused `encode_batch → search_batch`
//! call per batch. Latency under light load is bounded by `max_wait`;
//! throughput under heavy load approaches the batch kernel's, because
//! the per-request protocol cost is the only per-request work left.
//!
//! A job is either a single row ([`JobKind::Single`]) or a packed
//! BULK_CLASSIFY frame ([`JobKind::Bulk`]) whose rows are fused into
//! the same batch call as everything else — a bulk frame is just a
//! client that pre-batched its own traffic.
//!
//! Completions flow back through a [`CompletionSink`]: the threaded
//! core hands each connection's writer an mpsc channel, the event-loop
//! core funnels every connection into one channel tagged with the
//! connection token and nudges the loop through its wakeup pipe.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use hdc_model::ClassifySession;
use hypervec::ProbeConfig;

use crate::epoll::Waker;
use crate::metrics::{elapsed_us, ServeMetrics};
use crate::protocol::SearchMatch;

/// Batching and worker-pool parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum jobs fused into one batch call.
    pub max_batch: usize,
    /// Maximum time the first job of a batch waits for company.
    pub max_wait: Duration,
    /// Worker threads popping batches.
    pub workers: usize,
    /// Per-connection in-flight window: how many pipelined classify
    /// requests one connection may have queued before new ones are
    /// answered with a structured overload error (back-pressure; see
    /// [`protocol::overload_response`](crate::protocol::overload_response)).
    /// Serial request/response clients never feel this — they have at
    /// most one request in flight.
    pub pipeline_window: usize,
    /// Coarse-probe tuning for top-k search requests against binary
    /// models: `Some` switches the workers to the pruned scan (subsample
    /// first, rescore survivors exactly), `None` scans exactly. Non-
    /// binary models always scan exactly.
    pub search_probe: Option<ProbeConfig>,
    /// Concurrent-connection ceiling of the event-loop core. Accepts
    /// past the ceiling are answered with a structured `"overloaded"`
    /// error and closed instead of being silently dropped. The threaded
    /// core ignores this (its ceiling is thread exhaustion).
    pub max_connections: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            workers: 2,
            pipeline_window: 128,
            search_probe: None,
            max_connections: 16_384,
        }
    }
}

/// One classified row of a bulk frame's response.
#[derive(Debug, Clone, PartialEq)]
pub enum BulkItem {
    /// Top-1 class for this row.
    Class(usize),
    /// Top-1 class plus the full per-class score vector.
    ClassWithScores(usize, Vec<f64>),
    /// This row was rejected (validation, admission, or a mid-flight
    /// swap); the message mirrors the single-request error text.
    Rejected(String),
}

/// One row of an enqueued bulk job: either a validated, admitted row
/// awaiting the kernel, or a pre-rejected slot whose error is echoed
/// back in position.
#[derive(Debug, Clone)]
pub enum BulkSlot {
    /// A quantized feature row to classify.
    Row(Vec<u16>),
    /// Rejected before enqueue; carried so the response keeps one item
    /// per request row, in order.
    Rejected(String),
}

/// Outcome of one job, sent back to its connection handler.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// Top-1 class.
    Class(usize),
    /// Top-1 class plus the full per-class score vector.
    ClassWithScores(usize, Vec<f64>),
    /// Top-k search hits, best-first.
    Matches(Vec<SearchMatch>),
    /// Per-row outcomes of a bulk frame, in request order.
    Bulk(Vec<BulkItem>),
    /// The job could not run against the generation that served its
    /// batch (e.g. a hot swap changed the model shape mid-flight).
    Rejected(String),
}

/// A completed job, tagged with the request id it answers so the
/// connection's writer can interleave out-of-order completions.
/// Whether scores were requested is carried by the [`JobResult`]
/// variant itself.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Request id, echoed into the response frame/line.
    pub id: u64,
    /// The classify outcome.
    pub result: JobResult,
}

/// One message to a connection's write side.
#[derive(Debug)]
pub enum Delivery {
    /// A batch-worker completion: the writer renders it in the
    /// connection's negotiated wire format.
    Done(Completion),
    /// A pre-rendered response produced on the connection's read side
    /// or by the admin executor (protocol errors, info, admin,
    /// throttles) — sent verbatim, interleaved in arrival order with
    /// completions.
    Raw(Vec<u8>),
}

/// Where a finished job's [`Delivery`] goes.
///
/// The threaded core gives every connection its own channel (drained by
/// that connection's writer thread). The event-loop core shares one
/// channel across all connections, tags each delivery with the
/// connection's token, and wakes the loop through the self-pipe.
#[derive(Debug, Clone)]
pub enum CompletionSink {
    /// Per-connection channel to a dedicated writer thread.
    Channel(mpsc::Sender<Delivery>),
    /// Shared event-loop channel plus the wakeup pipe.
    EventLoop {
        /// The loop's completion channel; deliveries are tagged with
        /// the connection token.
        tx: mpsc::Sender<(u64, Delivery)>,
        /// Token of the connection this job belongs to.
        token: u64,
        /// The loop's wakeup pipe.
        waker: Arc<Waker>,
    },
}

impl CompletionSink {
    /// Delivers one message. A receiver that hung up already is not an
    /// error — the connection is tearing down and the delivery is moot.
    pub fn send(&self, delivery: Delivery) {
        match self {
            CompletionSink::Channel(tx) => {
                let _ = tx.send(delivery);
            }
            CompletionSink::EventLoop { tx, token, waker } => {
                let _ = tx.send((*token, delivery));
                waker.wake();
            }
        }
    }
}

/// What an enqueued job asks of the worker pool.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// One row: classify (optionally with scores) or top-k search.
    Single {
        /// Quantized feature row (validated by the handler before
        /// enqueue).
        levels: Vec<u16>,
        /// Whether the full score vector was requested.
        want_scores: bool,
        /// `Some(k)` makes this a top-k search job instead of a
        /// classify.
        search_k: Option<usize>,
    },
    /// Many rows from one BULK_CLASSIFY frame, answered as one
    /// multi-result response.
    Bulk {
        /// Per-row slots, in request order; pre-rejected rows ride
        /// along so the response stays positional.
        slots: Vec<BulkSlot>,
        /// Whether every row's score vector was requested.
        want_scores: bool,
    },
}

/// One enqueued request.
#[derive(Debug)]
pub struct Job {
    /// Request id (echoed into the completion).
    pub id: u64,
    /// The work: one row or a packed bulk frame.
    pub kind: JobKind,
    /// Where the completion goes.
    pub tx: CompletionSink,
    /// When telemetry is on, the instant this job entered the queue
    /// (drives the queue-wait stage histogram); `None` with telemetry
    /// off, so the off path never reads a clock.
    pub enqueued_at: Option<Instant>,
}

impl Job {
    /// Wraps a result into this job's tagged completion.
    #[must_use]
    pub fn complete(&self, result: JobResult) -> Delivery {
        Delivery::Done(Completion {
            id: self.id,
            result,
        })
    }

    /// True for top-k search jobs.
    #[must_use]
    pub fn is_search(&self) -> bool {
        matches!(
            self.kind,
            JobKind::Single {
                search_k: Some(_),
                ..
            }
        )
    }

    /// True when any row of this job asked for the score vector.
    #[must_use]
    pub fn wants_scores(&self) -> bool {
        match &self.kind {
            JobKind::Single { want_scores, .. } | JobKind::Bulk { want_scores, .. } => *want_scores,
        }
    }
}

/// Shared FIFO with batch-aware popping and shutdown draining.
#[derive(Debug, Default)]
pub struct BatchQueue {
    inner: Mutex<VecDeque<Job>>,
    cv: Condvar,
    closed: AtomicBool,
}

impl BatchQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job and wakes one worker.
    pub fn push(&self, job: Job) {
        self.inner
            .lock()
            .expect("batch queue lock never poisoned")
            .push_back(job);
        self.cv.notify_one();
    }

    /// Closes the queue: workers drain what is left, then exit.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Pops the next batch: blocks until at least one job is present,
    /// then waits up to `max_wait` (or until `max_batch` jobs are
    /// queued) before draining. Returns `None` once the queue is closed
    /// *and* empty.
    pub fn next_batch(&self, config: &BatchConfig) -> Option<Vec<Job>> {
        let mut queue = self.inner.lock().expect("batch queue lock never poisoned");
        loop {
            if !queue.is_empty() {
                break;
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            queue = self
                .cv
                .wait_timeout(queue, Duration::from_millis(20))
                .expect("batch queue lock never poisoned")
                .0;
        }
        // First job is in; give stragglers up to `max_wait` to join
        // (skip the wait entirely when draining after close).
        let deadline = Instant::now() + config.max_wait;
        while queue.len() < config.max_batch && !self.closed.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .cv
                .wait_timeout(queue, deadline - now)
                .expect("batch queue lock never poisoned");
            queue = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let take = queue.len().min(config.max_batch);
        Some(queue.drain(..take).collect())
    }
}

/// Worker loop: pop batches, run one fused session call per batch,
/// deliver per-job results. Returns once the queue is closed and
/// drained; `served` counts completed classifications. Generic over the
/// session shape ([`ClassifySession`]), so the same loop serves a
/// borrowed single-model session and a registry generation.
pub fn worker_loop<S: ClassifySession>(
    queue: &BatchQueue,
    session: &S,
    config: &BatchConfig,
    served: &AtomicU64,
    metrics: Option<&ServeMetrics>,
) {
    while let Some(batch) = queue.next_batch(config) {
        run_batch(session, config, batch, served, None, metrics);
    }
}

/// Executes one popped batch against `session`: search jobs run as
/// fused `search_topk_batch` calls, classify rows (single and bulk,
/// fused together) as one `scores_batch`/`classify_batch` call.
///
/// `generation` is `Some(id)` when a registry generation is serving:
/// every row is then re-validated against the session this batch
/// actually runs on, and rows that no longer fit (a shape-changing hot
/// swap raced the queue) are answered with a per-request error instead
/// of being dropped. A fixed session (`None`) cannot change shape, so
/// no re-validation happens and results stay bit-identical to the
/// pre-registry server.
pub fn run_batch<S: ClassifySession>(
    session: &S,
    config: &BatchConfig,
    batch: Vec<Job>,
    served: &AtomicU64,
    generation: Option<u64>,
    metrics: Option<&ServeMetrics>,
) {
    if let Some(m) = metrics {
        m.batch_size.record(batch.len() as u64);
        let popped = Instant::now();
        for job in &batch {
            if let Some(enqueued) = job.enqueued_at {
                let waited = popped.saturating_duration_since(enqueued);
                m.queue_wait_us
                    .record(u64::try_from(waited.as_micros()).unwrap_or(u64::MAX));
            }
        }
    }
    let (search, mut classify): (Vec<Job>, Vec<Job>) = batch.into_iter().partition(Job::is_search);
    // Search jobs re-validate against the serving session inside
    // `run_search_jobs` — same mid-flight-swap guarantee as below.
    run_search_jobs(session, config, search, served, metrics);
    if classify.is_empty() {
        return;
    }

    let n_features = session.n_features();
    let m_levels = session.m_levels();
    let fits =
        |row: &[u16]| row.len() == n_features && row.iter().all(|&lv| usize::from(lv) < m_levels);

    // Pre-rejections, aligned with `classify`: only `Single` jobs land
    // here — misfit bulk rows are rejected slot-by-slot in place so the
    // response stays positional.
    let mut results: Vec<Option<JobResult>> = vec![None; classify.len()];
    if let Some(generation_id) = generation {
        let misfit = || {
            format!(
                "model swapped mid-flight: row no longer fits generation {} \
                 (N = {}, M = {})",
                generation_id, n_features, m_levels
            )
        };
        for (i, job) in classify.iter_mut().enumerate() {
            match &mut job.kind {
                JobKind::Single { levels, .. } => {
                    if !fits(levels) {
                        results[i] = Some(JobResult::Rejected(misfit()));
                    }
                }
                JobKind::Bulk { slots, .. } => {
                    for slot in slots.iter_mut() {
                        if let BulkSlot::Row(row) = slot {
                            if !fits(row) {
                                *slot = BulkSlot::Rejected(misfit());
                            }
                        }
                    }
                }
            }
        }
    }

    // Fuse every surviving row — singles and bulk rows alike — into one
    // kernel call.
    let mut rows: Vec<&[u16]> = Vec::new();
    for (i, job) in classify.iter().enumerate() {
        if results[i].is_some() {
            continue;
        }
        match &job.kind {
            JobKind::Single { levels, .. } => rows.push(levels.as_slice()),
            JobKind::Bulk { slots, .. } => rows.extend(slots.iter().filter_map(|s| match s {
                BulkSlot::Row(row) => Some(row.as_slice()),
                BulkSlot::Rejected(_) => None,
            })),
        }
    }
    let any_scores = classify.iter().any(Job::wants_scores);
    let mut score_hits = None;
    let mut classes = None;
    if !rows.is_empty() {
        let start = metrics.map(|_| Instant::now());
        if any_scores {
            score_hits = Some(session.scores_batch(&rows));
        } else {
            classes = Some(session.classify_batch(&rows));
        }
        if let (Some(m), Some(start)) = (metrics, start) {
            m.execute_classify_us.record(elapsed_us(start));
        }
    }

    let mut slot = 0usize;
    for (job, pre) in classify.iter().zip(results) {
        let result = match pre {
            Some(rejection) => rejection,
            None => match &job.kind {
                JobKind::Single { want_scores, .. } => {
                    let result = if let Some(hits) = &score_hits {
                        if *want_scores {
                            JobResult::ClassWithScores(hits.best(slot), hits.scores(slot).to_vec())
                        } else {
                            JobResult::Class(hits.best(slot))
                        }
                    } else {
                        let classes = classes.as_ref().expect("kernel ran: rows were nonempty");
                        JobResult::Class(classes[slot])
                    };
                    slot += 1;
                    result
                }
                JobKind::Bulk { slots, want_scores } => {
                    let mut items = Vec::with_capacity(slots.len());
                    for s in slots {
                        match s {
                            BulkSlot::Rejected(msg) => items.push(BulkItem::Rejected(msg.clone())),
                            BulkSlot::Row(_) => {
                                let item = if let Some(hits) = &score_hits {
                                    if *want_scores {
                                        BulkItem::ClassWithScores(
                                            hits.best(slot),
                                            hits.scores(slot).to_vec(),
                                        )
                                    } else {
                                        BulkItem::Class(hits.best(slot))
                                    }
                                } else {
                                    let classes =
                                        classes.as_ref().expect("kernel ran: rows were nonempty");
                                    BulkItem::Class(classes[slot])
                                };
                                slot += 1;
                                items.push(item);
                            }
                        }
                    }
                    JobResult::Bulk(items)
                }
            },
        };
        // `classified` counts answered classifications only — swap-
        // rejected jobs and rejected bulk rows are protocol rejections,
        // not results.
        match &result {
            JobResult::Rejected(_) => {}
            JobResult::Bulk(items) => {
                let answered = items
                    .iter()
                    .filter(|item| !matches!(item, BulkItem::Rejected(_)))
                    .count() as u64;
                if answered > 0 {
                    served.fetch_add(answered, Ordering::Relaxed);
                }
            }
            _ => {
                served.fetch_add(1, Ordering::Relaxed);
            }
        }
        // A handler that hung up already is not an error.
        job.tx.send(job.complete(result));
    }
}

/// Runs one batch's search jobs: rows that no longer fit the session
/// (a registry hot swap raced them) are rejected per-request, the rest
/// run as one fused `search_topk_batch` per distinct `k` (in practice a
/// batch almost always carries one `k`, so this is one call).
pub fn run_search_jobs<S: ClassifySession>(
    session: &S,
    config: &BatchConfig,
    jobs: Vec<Job>,
    served: &AtomicU64,
    metrics: Option<&ServeMetrics>,
) {
    if jobs.is_empty() {
        return;
    }
    let mut by_k: BTreeMap<usize, Vec<(Vec<u16>, Job)>> = BTreeMap::new();
    for mut job in jobs {
        let JobKind::Single {
            levels, search_k, ..
        } = &mut job.kind
        else {
            unreachable!("search jobs are Single");
        };
        let fits = levels.len() == session.n_features()
            && levels
                .iter()
                .all(|&lv| usize::from(lv) < session.m_levels());
        if fits {
            let k = search_k.expect("search jobs carry k");
            let row = std::mem::take(levels);
            by_k.entry(k).or_default().push((row, job));
        } else {
            let result = JobResult::Rejected(format!(
                "model swapped mid-flight: row no longer fits serving model \
                 (N = {}, M = {})",
                session.n_features(),
                session.m_levels()
            ));
            job.tx.send(job.complete(result));
        }
    }
    for (k, group) in by_k {
        let rows: Vec<&[u16]> = group.iter().map(|(row, _)| row.as_slice()).collect();
        let start = metrics.map(|_| Instant::now());
        let hits = session.search_topk_batch(&rows, k, config.search_probe.as_ref());
        if let (Some(m), Some(start)) = (metrics, start) {
            m.execute_search_us.record(elapsed_us(start));
        }
        for (i, (_, job)) in group.into_iter().enumerate() {
            let matches: Vec<SearchMatch> = hits
                .matches(i)
                .iter()
                .map(|m| SearchMatch {
                    row: m.row as u32,
                    score: m.score,
                })
                .collect();
            served.fetch_add(1, Ordering::Relaxed);
            job.tx.send(job.complete(JobResult::Matches(matches)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(level: u16) -> (Job, mpsc::Receiver<Delivery>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id: u64::from(level),
                kind: JobKind::Single {
                    levels: vec![level],
                    want_scores: false,
                    search_k: None,
                },
                tx: CompletionSink::Channel(tx),
                enqueued_at: None,
            },
            rx,
        )
    }

    fn levels_of(job: &Job) -> &[u16] {
        match &job.kind {
            JobKind::Single { levels, .. } => levels,
            JobKind::Bulk { .. } => panic!("test jobs are Single"),
        }
    }

    #[test]
    fn batches_cap_at_max_batch() {
        let queue = BatchQueue::new();
        let mut rxs = Vec::new();
        for i in 0..5 {
            let (j, rx) = job(i);
            queue.push(j);
            rxs.push(rx);
        }
        let config = BatchConfig {
            max_batch: 3,
            max_wait: Duration::from_micros(1),
            workers: 1,
            ..BatchConfig::default()
        };
        let first = queue.next_batch(&config).unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(levels_of(&first[0]), &[0]);
        let second = queue.next_batch(&config).unwrap();
        assert_eq!(second.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let queue = BatchQueue::new();
        let (j, _rx) = job(1);
        queue.push(j);
        queue.close();
        let config = BatchConfig::default();
        assert_eq!(queue.next_batch(&config).unwrap().len(), 1);
        assert!(queue.next_batch(&config).is_none());
    }

    #[test]
    fn next_batch_wakes_on_late_push() {
        let queue = BatchQueue::new();
        let config = BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(50),
            workers: 1,
            ..BatchConfig::default()
        };
        std::thread::scope(|s| {
            let popper = s.spawn(|| queue.next_batch(&config));
            std::thread::sleep(Duration::from_millis(5));
            let (j, _rx) = job(7);
            queue.push(j);
            let batch = popper.join().unwrap().unwrap();
            assert_eq!(batch.len(), 1);
            assert_eq!(levels_of(&batch[0]), &[7]);
        });
    }
}
