//! The request-batching queue and its worker pool.
//!
//! Connection handlers enqueue one [`Job`] per request; worker threads
//! pop *batches* — up to `max_batch` jobs, or whatever has accumulated
//! after `max_wait` — and run one fused `encode_batch → search_batch`
//! call per batch. Latency under light load is bounded by `max_wait`;
//! throughput under heavy load approaches the batch kernel's, because
//! the per-request protocol cost is the only per-request work left.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use hdc_model::ClassifySession;
use hypervec::ProbeConfig;

use crate::protocol::SearchMatch;

/// Batching and worker-pool parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum jobs fused into one batch call.
    pub max_batch: usize,
    /// Maximum time the first job of a batch waits for company.
    pub max_wait: Duration,
    /// Worker threads popping batches.
    pub workers: usize,
    /// Per-connection in-flight window: how many pipelined classify
    /// requests one connection may have queued before new ones are
    /// answered with a structured overload error (back-pressure; see
    /// [`protocol::overload_response`](crate::protocol::overload_response)).
    /// Serial request/response clients never feel this — they have at
    /// most one request in flight.
    pub pipeline_window: usize,
    /// Coarse-probe tuning for top-k search requests against binary
    /// models: `Some` switches the workers to the pruned scan (subsample
    /// first, rescore survivors exactly), `None` scans exactly. Non-
    /// binary models always scan exactly.
    pub search_probe: Option<ProbeConfig>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            workers: 2,
            pipeline_window: 128,
            search_probe: None,
        }
    }
}

/// Outcome of one classify job, sent back to its connection handler.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// Top-1 class.
    Class(usize),
    /// Top-1 class plus the full per-class score vector.
    ClassWithScores(usize, Vec<f64>),
    /// Top-k search hits, best-first.
    Matches(Vec<SearchMatch>),
    /// The job could not run against the generation that served its
    /// batch (e.g. a hot swap changed the model shape mid-flight).
    Rejected(String),
}

/// A completed classify job, tagged with the request id it answers so
/// the connection's writer can interleave out-of-order completions.
/// Whether scores were requested is carried by the [`JobResult`]
/// variant itself.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Request id, echoed into the response frame/line.
    pub id: u64,
    /// The classify outcome.
    pub result: JobResult,
}

/// One message to a connection's writer thread.
#[derive(Debug)]
pub enum Delivery {
    /// A batch-worker completion: the writer renders it in the
    /// connection's negotiated wire format.
    Done(Completion),
    /// A pre-rendered response produced on the connection's read side
    /// (protocol errors, info, admin, throttles) — the writer sends it
    /// verbatim, interleaved in channel order with completions.
    Raw(Vec<u8>),
}

/// One enqueued classify request.
#[derive(Debug)]
pub struct Job {
    /// Request id (echoed into the completion).
    pub id: u64,
    /// Quantized feature row (validated by the handler before enqueue).
    pub levels: Vec<u16>,
    /// Whether the full score vector was requested.
    pub want_scores: bool,
    /// `Some(k)` makes this a top-k search job instead of a classify.
    pub search_k: Option<usize>,
    /// Delivery channel to the connection's writer thread.
    pub tx: mpsc::Sender<Delivery>,
}

impl Job {
    /// Wraps a result into this job's tagged completion.
    #[must_use]
    pub fn complete(&self, result: JobResult) -> Delivery {
        Delivery::Done(Completion {
            id: self.id,
            result,
        })
    }
}

/// Shared FIFO with batch-aware popping and shutdown draining.
#[derive(Debug, Default)]
pub struct BatchQueue {
    inner: Mutex<VecDeque<Job>>,
    cv: Condvar,
    closed: AtomicBool,
}

impl BatchQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job and wakes one worker.
    pub fn push(&self, job: Job) {
        self.inner
            .lock()
            .expect("batch queue lock never poisoned")
            .push_back(job);
        self.cv.notify_one();
    }

    /// Closes the queue: workers drain what is left, then exit.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Pops the next batch: blocks until at least one job is present,
    /// then waits up to `max_wait` (or until `max_batch` jobs are
    /// queued) before draining. Returns `None` once the queue is closed
    /// *and* empty.
    pub fn next_batch(&self, config: &BatchConfig) -> Option<Vec<Job>> {
        let mut queue = self.inner.lock().expect("batch queue lock never poisoned");
        loop {
            if !queue.is_empty() {
                break;
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            queue = self
                .cv
                .wait_timeout(queue, Duration::from_millis(20))
                .expect("batch queue lock never poisoned")
                .0;
        }
        // First job is in; give stragglers up to `max_wait` to join
        // (skip the wait entirely when draining after close).
        let deadline = Instant::now() + config.max_wait;
        while queue.len() < config.max_batch && !self.closed.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .cv
                .wait_timeout(queue, deadline - now)
                .expect("batch queue lock never poisoned");
            queue = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let take = queue.len().min(config.max_batch);
        Some(queue.drain(..take).collect())
    }
}

/// Worker loop: pop batches, run one fused session call per batch,
/// deliver per-job results. Returns once the queue is closed and
/// drained; `served` counts completed requests. Generic over the
/// session shape ([`ClassifySession`]), so the same loop serves a
/// borrowed single-model session and a registry generation.
pub fn worker_loop<S: ClassifySession>(
    queue: &BatchQueue,
    session: &S,
    config: &BatchConfig,
    served: &AtomicU64,
) {
    while let Some(batch) = queue.next_batch(config) {
        let (search, batch): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.search_k.is_some());
        run_search_jobs(session, config, search, served);
        let rows: Vec<&[u16]> = batch.iter().map(|j| j.levels.as_slice()).collect();
        if batch.iter().any(|j| j.want_scores) {
            let hits = session.scores_batch(&rows);
            for (i, job) in batch.into_iter().enumerate() {
                let result = if job.want_scores {
                    JobResult::ClassWithScores(hits.best(i), hits.scores(i).to_vec())
                } else {
                    JobResult::Class(hits.best(i))
                };
                served.fetch_add(1, Ordering::Relaxed);
                // A handler that hung up already is not an error.
                let _ = job.tx.send(job.complete(result));
            }
        } else if !batch.is_empty() {
            let classes = session.classify_batch(&rows);
            for (job, class) in batch.into_iter().zip(classes) {
                served.fetch_add(1, Ordering::Relaxed);
                let _ = job.tx.send(job.complete(JobResult::Class(class)));
            }
        }
    }
}

/// Runs one batch's search jobs: rows that no longer fit the session
/// (a registry hot swap raced them) are rejected per-request, the rest
/// run as one fused `search_topk_batch` per distinct `k` (in practice a
/// batch almost always carries one `k`, so this is one call).
pub fn run_search_jobs<S: ClassifySession>(
    session: &S,
    config: &BatchConfig,
    jobs: Vec<Job>,
    served: &AtomicU64,
) {
    if jobs.is_empty() {
        return;
    }
    let mut by_k: BTreeMap<usize, Vec<Job>> = BTreeMap::new();
    for job in jobs {
        let fits = job.levels.len() == session.n_features()
            && job
                .levels
                .iter()
                .all(|&lv| usize::from(lv) < session.m_levels());
        if fits {
            let k = job.search_k.expect("search jobs carry k");
            by_k.entry(k).or_default().push(job);
        } else {
            let result = JobResult::Rejected(format!(
                "model swapped mid-flight: row no longer fits serving model \
                 (N = {}, M = {})",
                session.n_features(),
                session.m_levels()
            ));
            let _ = job.tx.send(job.complete(result));
        }
    }
    for (k, group) in by_k {
        let rows: Vec<&[u16]> = group.iter().map(|j| j.levels.as_slice()).collect();
        let hits = session.search_topk_batch(&rows, k, config.search_probe.as_ref());
        for (i, job) in group.into_iter().enumerate() {
            let matches: Vec<SearchMatch> = hits
                .matches(i)
                .iter()
                .map(|m| SearchMatch {
                    row: m.row as u32,
                    score: m.score,
                })
                .collect();
            served.fetch_add(1, Ordering::Relaxed);
            let _ = job.tx.send(job.complete(JobResult::Matches(matches)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(level: u16) -> (Job, mpsc::Receiver<Delivery>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id: u64::from(level),
                levels: vec![level],
                want_scores: false,
                search_k: None,
                tx,
            },
            rx,
        )
    }

    #[test]
    fn batches_cap_at_max_batch() {
        let queue = BatchQueue::new();
        let mut rxs = Vec::new();
        for i in 0..5 {
            let (j, rx) = job(i);
            queue.push(j);
            rxs.push(rx);
        }
        let config = BatchConfig {
            max_batch: 3,
            max_wait: Duration::from_micros(1),
            workers: 1,
            ..BatchConfig::default()
        };
        let first = queue.next_batch(&config).unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].levels, vec![0]);
        let second = queue.next_batch(&config).unwrap();
        assert_eq!(second.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let queue = BatchQueue::new();
        let (j, _rx) = job(1);
        queue.push(j);
        queue.close();
        let config = BatchConfig::default();
        assert_eq!(queue.next_batch(&config).unwrap().len(), 1);
        assert!(queue.next_batch(&config).is_none());
    }

    #[test]
    fn next_batch_wakes_on_late_push() {
        let queue = BatchQueue::new();
        let config = BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(50),
            workers: 1,
            ..BatchConfig::default()
        };
        std::thread::scope(|s| {
            let popper = s.spawn(|| queue.next_batch(&config));
            std::thread::sleep(Duration::from_millis(5));
            let (j, _rx) = job(7);
            queue.push(j);
            let batch = popper.join().unwrap().unwrap();
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].levels, vec![7]);
        });
    }
}
