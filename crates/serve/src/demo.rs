//! Synthetic demo models for the server binary, the load-generation
//! benchmark and the quickstart example.

use hdc_datasets::SynthSpec;
use hdc_model::{HdcConfig, HdcModel, ModelKind, RecordEncoder};
use hypervec::HvRng;

/// Shape of a synthetic serving demo model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemoSpec {
    /// Input features `N`.
    pub n_features: usize,
    /// Classes `C`.
    pub n_classes: usize,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Quantization levels `M`.
    pub m_levels: usize,
    /// Training samples for the synthetic task.
    pub train_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DemoSpec {
    fn default() -> Self {
        DemoSpec {
            n_features: 16,
            n_classes: 8,
            dim: 2048,
            m_levels: 8,
            train_size: 512,
            seed: 2022,
        }
    }
}

/// Trains a standard HDC model on a synthetic task with the given
/// shape — enough signal that served predictions are meaningful, small
/// enough to build in well under a second.
///
/// # Panics
///
/// Panics on an internally inconsistent spec (zero sizes).
#[must_use]
pub fn demo_model(spec: &DemoSpec) -> HdcModel<RecordEncoder> {
    let synth = SynthSpec::new(
        "serve-demo",
        spec.n_features,
        spec.n_classes,
        spec.train_size,
        spec.train_size / 4,
        0.08,
    );
    let mut rng = HvRng::from_seed(spec.seed);
    let (train, _test) = synth.generate(&mut rng).expect("valid synthetic spec");
    let config = HdcConfig {
        dim: spec.dim,
        m_levels: spec.m_levels,
        kind: ModelKind::Binary,
        epochs: 2,
        learning_rate: 1,
        seed: spec.seed,
    };
    HdcModel::fit_standard(&config, &train).expect("synthetic training succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_model::Encoder;

    #[test]
    fn demo_model_has_requested_shape() {
        let spec = DemoSpec {
            dim: 512,
            train_size: 128,
            ..DemoSpec::default()
        };
        let model = demo_model(&spec);
        assert_eq!(model.encoder().n_features(), spec.n_features);
        assert_eq!(model.memory().n_classes(), spec.n_classes);
        assert_eq!(model.memory().dim(), 512);
    }
}
