//! Synthetic demo models for the server binary, the load-generation
//! benchmark and the quickstart example.

use hdc_datasets::{Dataset, SynthSpec};
use hdc_model::{HdcConfig, HdcModel, ModelKind, OwnedSession, RecordEncoder};
use hdc_store::{AnyEncoder, KeySegment, ModelRegistry, ModelSnapshot, RekeySource};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::HvRng;

/// Shape of a synthetic serving demo model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemoSpec {
    /// Input features `N`.
    pub n_features: usize,
    /// Classes `C`.
    pub n_classes: usize,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Quantization levels `M`.
    pub m_levels: usize,
    /// Training samples for the synthetic task.
    pub train_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DemoSpec {
    fn default() -> Self {
        DemoSpec {
            n_features: 16,
            n_classes: 8,
            dim: 2048,
            m_levels: 8,
            train_size: 512,
            seed: 2022,
        }
    }
}

/// Trains a standard HDC model on a synthetic task with the given
/// shape — enough signal that served predictions are meaningful, small
/// enough to build in well under a second.
///
/// # Panics
///
/// Panics on an internally inconsistent spec (zero sizes).
#[must_use]
pub fn demo_model(spec: &DemoSpec) -> HdcModel<RecordEncoder> {
    let (train, _) = demo_dataset(spec);
    HdcModel::fit_standard(&demo_config(spec), &train).expect("synthetic training succeeds")
}

/// Trains a non-binary (integer class memory, cosine metric) demo model
/// on the same synthetic task — the serving-layer fixture for the int
/// search and classification paths.
///
/// # Panics
///
/// Panics on an internally inconsistent spec (zero sizes).
#[must_use]
pub fn demo_nonbinary_model(spec: &DemoSpec) -> HdcModel<RecordEncoder> {
    let (train, _) = demo_dataset(spec);
    let config = HdcConfig {
        kind: ModelKind::NonBinary,
        ..demo_config(spec)
    };
    HdcModel::fit_standard(&config, &train).expect("synthetic training succeeds")
}

/// The synthetic train/test datasets behind the demo models.
///
/// # Panics
///
/// Panics on an internally inconsistent spec (zero sizes).
#[must_use]
pub fn demo_dataset(spec: &DemoSpec) -> (Dataset, Dataset) {
    let synth = SynthSpec::new(
        "serve-demo",
        spec.n_features,
        spec.n_classes,
        spec.train_size,
        spec.train_size / 4,
        0.08,
    );
    let mut rng = HvRng::from_seed(spec.seed);
    synth.generate(&mut rng).expect("valid synthetic spec")
}

/// The hyperparameters the demo models train with.
#[must_use]
pub fn demo_config(spec: &DemoSpec) -> HdcConfig {
    HdcConfig {
        dim: spec.dim,
        m_levels: spec.m_levels,
        kind: ModelKind::Binary,
        epochs: 2,
        learning_rate: 1,
        seed: spec.seed,
    }
}

/// Trains an HDLock-*locked* demo model (`n_layers` key depth, pool as
/// large as the feature count) on the same synthetic task, returning
/// the model and its training set.
///
/// # Panics
///
/// Panics on an internally inconsistent spec (zero sizes).
#[must_use]
pub fn demo_locked_model(spec: &DemoSpec, n_layers: usize) -> (HdcModel<LockedEncoder>, Dataset) {
    let (train, _) = demo_dataset(spec);
    let config = demo_config(spec);
    let mut rng = HvRng::from_seed(spec.seed ^ 0x0010_C4ED);
    let encoder = LockedEncoder::generate(
        &mut rng,
        &LockConfig {
            n_features: spec.n_features,
            m_levels: spec.m_levels,
            dim: spec.dim,
            pool_size: spec.n_features,
            n_layers,
        },
    )
    .expect("valid lock config");
    let model =
        HdcModel::fit_with_encoder(&config, encoder, &train).expect("synthetic training succeeds");
    (model, train)
}

/// Boots a [`ModelRegistry`] serving a locked demo model, with the
/// rekey source attached — the quickest path to a hot-swappable server
/// (the `hdc_serve` binary and the `hot_reload` example both start
/// here).
///
/// # Panics
///
/// Panics on an internally inconsistent spec (zero sizes).
#[must_use]
pub fn demo_locked_registry(spec: &DemoSpec, n_layers: usize) -> ModelRegistry {
    let (model, train) = demo_locked_model(spec, n_layers);
    let snapshot = ModelSnapshot::from_locked_model(&model);
    let key = KeySegment::from_locked_encoder(model.encoder()).expect("vault is sealed");
    ModelRegistry::from_snapshot(snapshot, Some(&key))
        .expect("demo snapshot is self-consistent")
        .with_rekey_source(RekeySource {
            config: demo_config(spec),
            train,
        })
}

/// Boots a [`ModelRegistry`] serving the locked demo model in
/// constant-time *hardened* mode ([`DeriveMode::Hardened`]) — the
/// fixture behind `hdc_serve --hardened`.
///
/// Snapshots do not carry a derive mode, so the hardened registry is
/// built by constructing the serving session directly instead of going
/// through [`ModelSnapshot`]. The rekey source still rides along, and
/// rekeyed generations stay hardened (`LockedEncoder::rekeyed`
/// preserves the mode). See `SECURITY.md` for what hardened mode does
/// and does not defend against.
///
/// # Panics
///
/// Panics on an internally inconsistent spec (zero sizes).
#[must_use]
pub fn demo_hardened_registry(spec: &DemoSpec, n_layers: usize) -> ModelRegistry {
    let (model, train) = demo_locked_model(spec, n_layers);
    let checksum = ModelSnapshot::from_locked_model(&model).checksum();
    let config = demo_config(spec);
    let (_, mut encoder, _, memory) = model.into_parts();
    encoder.set_mode(DeriveMode::Hardened);
    let session = OwnedSession::new(AnyEncoder::Locked(encoder), &memory);
    ModelRegistry::new(session, checksum).with_rekey_source(RekeySource { config, train })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_model::Encoder;

    #[test]
    fn demo_model_has_requested_shape() {
        let spec = DemoSpec {
            dim: 512,
            train_size: 128,
            ..DemoSpec::default()
        };
        let model = demo_model(&spec);
        assert_eq!(model.encoder().n_features(), spec.n_features);
        assert_eq!(model.memory().n_classes(), spec.n_classes);
        assert_eq!(model.memory().dim(), 512);
    }
}
