//! Line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a plain TCP
//! stream — trivially scriptable (`nc`, any language) and cheap enough
//! to parse that the encode+search kernels stay the bottleneck.
//!
//! ```text
//! → {"id":1,"levels":[0,3,2,1]}
//! ← {"id":1,"class":2}
//! → {"id":2,"levels":[0,3,2,1],"scores":true}
//! ← {"id":2,"class":2,"scores":[0.12,-0.03,0.57]}
//! → {"id":3,"levels":[99]}
//! ← {"id":3,"error":"row has 1 levels, model expects 4"}
//! → {"id":4,"info":true}
//! ← {"id":4,"info":{"backend":"avx2","dim":10000,"features":64,"levels":16,"classes":8}}
//! ```
//!
//! The `info` request reports the serving model's shape and the active
//! SIMD kernel backend, so operators can verify from the wire what is
//! actually running.
//!
//! Requests are parsed through the vendored `serde_json` stand-in into
//! its [`Value`] tree; responses are rendered directly (the numeric
//! formats are plain Rust `Display`, which round-trips through the
//! parser).

use serde_json::Value;

/// A parsed classify request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifyRequest {
    /// Client-chosen correlation id, echoed back in the response.
    pub id: u64,
    /// Quantized feature row (level indices); empty for info requests.
    pub levels: Vec<u16>,
    /// Whether to return the full per-class score vector.
    pub want_scores: bool,
    /// Whether this is a server-info request instead of a classify.
    pub want_info: bool,
}

/// Server shape and runtime facts reported by an info response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Active SIMD kernel backend (`scalar`, `avx2`, or `portable`).
    pub backend: String,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Input feature count `N`.
    pub features: usize,
    /// Quantization level count `M`.
    pub levels: usize,
    /// Class count `C`.
    pub classes: usize,
}

/// A parsed classify response (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyResponse {
    /// Echoed correlation id.
    pub id: u64,
    /// Predicted class, when the request succeeded.
    pub class: Option<usize>,
    /// Per-class scores, when requested.
    pub scores: Option<Vec<f64>>,
    /// Server info, when this answers an info request.
    pub info: Option<ServerInfo>,
    /// Error message, when the request failed.
    pub error: Option<String>,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns `(id, message)` — `id` is the request's id when it could be
/// recovered (so the error response still correlates), 0 otherwise.
pub fn parse_request(line: &str) -> Result<ClassifyRequest, (u64, String)> {
    let value: Value =
        serde_json::from_str(line.trim()).map_err(|e| (0, format!("malformed JSON: {e}")))?;
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or((0, "missing numeric `id`".to_owned()))?;
    if matches!(value.get("info"), Some(Value::Bool(true))) {
        return Ok(ClassifyRequest {
            id,
            levels: Vec::new(),
            want_scores: false,
            want_info: true,
        });
    }
    let levels_value = value
        .get("levels")
        .and_then(Value::as_array)
        .ok_or((id, "missing `levels` array".to_owned()))?;
    let mut levels = Vec::with_capacity(levels_value.len());
    for (i, lv) in levels_value.iter().enumerate() {
        let n = lv
            .as_u64()
            .and_then(|n| u16::try_from(n).ok())
            .ok_or((id, format!("level {i} is not a u16")))?;
        levels.push(n);
    }
    let want_scores = matches!(value.get("scores"), Some(Value::Bool(true)));
    Ok(ClassifyRequest {
        id,
        levels,
        want_scores,
        want_info: false,
    })
}

/// Renders an info request line (client side), with trailing newline.
#[must_use]
pub fn info_request_line(id: u64) -> String {
    format!("{{\"id\":{id},\"info\":true}}\n")
}

/// Renders an info response line (with trailing newline). The backend
/// name is emitted as-is; backend names are plain identifiers.
#[must_use]
pub fn info_response(id: u64, info: &ServerInfo) -> String {
    format!(
        "{{\"id\":{id},\"info\":{{\"backend\":\"{}\",\"dim\":{},\"features\":{},\
         \"levels\":{},\"classes\":{}}}}}\n",
        info.backend, info.dim, info.features, info.levels, info.classes
    )
}

/// Renders a request line (client side). The line includes the trailing
/// newline.
#[must_use]
pub fn request_line(id: u64, levels: &[u16], want_scores: bool) -> String {
    let mut out = format!("{{\"id\":{id},\"levels\":[");
    for (i, lv) in levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&lv.to_string());
    }
    out.push(']');
    if want_scores {
        out.push_str(",\"scores\":true");
    }
    out.push_str("}\n");
    out
}

/// Renders a success response line (with trailing newline).
#[must_use]
pub fn ok_response(id: u64, class: usize, scores: Option<&[f64]>) -> String {
    let mut out = format!("{{\"id\":{id},\"class\":{class}");
    if let Some(scores) = scores {
        out.push_str(",\"scores\":[");
        for (i, s) in scores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // `{s:?}` keeps a decimal point / exponent, so the value
            // reads back as a float.
            out.push_str(&format!("{s:?}"));
        }
        out.push(']');
    }
    out.push_str("}\n");
    out
}

/// Renders an error response line (with trailing newline).
#[must_use]
pub fn error_response(id: u64, message: &str) -> String {
    let escaped: String = message
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    format!("{{\"id\":{id},\"error\":\"{escaped}\"}}\n")
}

/// Parses one response line (client side).
///
/// # Errors
///
/// Returns a message for malformed lines.
pub fn parse_response(line: &str) -> Result<ClassifyResponse, String> {
    let value: Value =
        serde_json::from_str(line.trim()).map_err(|e| format!("malformed JSON: {e}"))?;
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing numeric `id`".to_owned())?;
    let class = value
        .get("class")
        .and_then(Value::as_u64)
        .map(|c| c as usize);
    let scores = match value.get("scores").and_then(Value::as_array) {
        Some(arr) => {
            let mut out = Vec::with_capacity(arr.len());
            for s in arr {
                out.push(s.as_f64().ok_or_else(|| "non-numeric score".to_owned())?);
            }
            Some(out)
        }
        None => None,
    };
    let info = match value.get("info") {
        Some(obj) => Some(ServerInfo {
            backend: obj
                .get("backend")
                .and_then(Value::as_str)
                .ok_or_else(|| "info without `backend`".to_owned())?
                .to_owned(),
            dim: info_field(obj, "dim")?,
            features: info_field(obj, "features")?,
            levels: info_field(obj, "levels")?,
            classes: info_field(obj, "classes")?,
        }),
        None => None,
    };
    let error = value
        .get("error")
        .and_then(Value::as_str)
        .map(str::to_owned);
    if class.is_none() && error.is_none() && info.is_none() {
        return Err("response carries neither `class`, `info` nor `error`".to_owned());
    }
    Ok(ClassifyResponse {
        id,
        class,
        scores,
        info,
        error,
    })
}

/// Extracts one numeric field of an info response object.
fn info_field(obj: &Value, key: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("info without numeric `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let line = request_line(42, &[0, 3, 65535], true);
        let req = parse_request(&line).unwrap();
        assert_eq!(
            req,
            ClassifyRequest {
                id: 42,
                levels: vec![0, 3, 65535],
                want_scores: true,
                want_info: false,
            }
        );
        let plain = parse_request(&request_line(7, &[1], false)).unwrap();
        assert!(!plain.want_scores);
    }

    #[test]
    fn info_roundtrip() {
        let req = parse_request(&info_request_line(11)).unwrap();
        assert_eq!(
            req,
            ClassifyRequest {
                id: 11,
                levels: vec![],
                want_scores: false,
                want_info: true,
            }
        );
        let info = ServerInfo {
            backend: "avx2".to_owned(),
            dim: 10_000,
            features: 64,
            levels: 16,
            classes: 8,
        };
        let resp = parse_response(&info_response(11, &info)).unwrap();
        assert_eq!(resp.id, 11);
        assert_eq!(resp.info, Some(info));
        assert!(resp.class.is_none() && resp.error.is_none());
    }

    #[test]
    fn response_roundtrip() {
        let ok = parse_response(&ok_response(1, 3, None)).unwrap();
        assert_eq!(ok.id, 1);
        assert_eq!(ok.class, Some(3));
        assert!(ok.scores.is_none() && ok.error.is_none());

        let scored = parse_response(&ok_response(2, 0, Some(&[0.5, -1.0, 0.125]))).unwrap();
        assert_eq!(scored.scores, Some(vec![0.5, -1.0, 0.125]));

        let err = parse_response(&error_response(3, "bad \"row\"\nhere")).unwrap();
        assert_eq!(err.id, 3);
        assert_eq!(err.error.as_deref(), Some("bad \"row\"\nhere"));
        assert!(err.class.is_none());
    }

    #[test]
    fn malformed_requests_keep_recoverable_id() {
        assert_eq!(parse_request("not json").unwrap_err().0, 0);
        assert_eq!(parse_request("{\"levels\":[1]}").unwrap_err().0, 0);
        let (id, msg) = parse_request("{\"id\":9}").unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("levels"));
        let (id, _) = parse_request("{\"id\":5,\"levels\":[1,99999]}").unwrap_err();
        assert_eq!(id, 5);
    }

    #[test]
    fn response_without_class_or_error_is_rejected() {
        assert!(parse_response("{\"id\":1}").is_err());
    }
}
