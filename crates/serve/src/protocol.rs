//! Line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a plain TCP
//! stream — trivially scriptable (`nc`, any language) and cheap enough
//! to parse that the encode+search kernels stay the bottleneck.
//!
//! ```text
//! → {"id":1,"levels":[0,3,2,1]}
//! ← {"id":1,"class":2}
//! → {"id":2,"levels":[0,3,2,1],"scores":true}
//! ← {"id":2,"class":2,"scores":[0.12,-0.03,0.57]}
//! → {"id":3,"levels":[99]}
//! ← {"id":3,"error":"row has 1 levels, model expects 4"}
//! → {"id":4,"info":true}
//! ← {"id":4,"info":{"backend":"avx2","dim":10000,"features":64,"levels":16,
//!    "classes":8,"generation":3,"checksum":"a1b2c3d4e5f60789","hardened":false}}
//! → {"id":5,"levels":[0,3,2,1],"search":{"k":3}}
//! ← {"id":5,"matches":[{"row":41,"score":0.93},{"row":7,"score":0.41},
//!    {"row":1003,"score":0.40}]}
//! ```
//!
//! A `search` request runs top-k similarity search over the serving
//! model's row memory instead of top-1 classification: the response
//! carries the best `k` rows, best-first (ties broken toward the lowest
//! row id), with their exact similarity scores.
//!
//! The `info` request reports the serving model's shape, the active
//! SIMD kernel backend, and — on a registry-backed server — the active
//! model **generation id** and snapshot **checksum**, so clients can
//! detect a hot swap from the wire.
//!
//! ## Admin requests (registry server)
//!
//! ```text
//! → {"id":5,"stats":true}
//! ← {"id":5,"stats":{"generation":3,"checksum":"…","locked":true,"hardened":false,
//!    "reloads":1,"rekeys":1,"rollbacks":0,"requests":9041,"throttled":12}}
//! → {"id":6,"reload":{"snapshot":"/models/v7.hdsn","key":"/keys/v7.hdky"}}
//! ← {"id":6,"swapped":{"generation":4,"checksum":"…"}}
//! → {"id":7,"rekey":20240317}
//! ← {"id":7,"swapped":{"generation":5,"checksum":"…"}}
//! ```
//!
//! ## Streamed snapshot transfer
//!
//! Snapshots too large to pre-place on the server's filesystem stream
//! over the wire in base64 chunks, staged server-side and committed as
//! a hot swap (each chunk is acked with the cumulative byte count):
//!
//! ```text
//! → {"id":8,"xfer":{"begin":1048576}}
//! ← {"id":8,"xfer":{"received":0}}
//! → {"id":9,"xfer":{"chunk":"SERTTg…"}}
//! ← {"id":9,"xfer":{"received":65536}}
//! → {"id":10,"xfer":{"commit":{"key":"/keys/v7.hdky"}}}
//! ← {"id":10,"swapped":{"generation":4,"checksum":"…"}}
//! ```
//!
//! ## Throttling
//!
//! A client over its admission budget receives a **structured**
//! throttle error — `{"id":…,"error":"…","throttled":true}` — so
//! well-behaved clients can distinguish back-off from hard failures.
//!
//! Requests are parsed through the vendored `serde_json` stand-in into
//! its [`Value`] tree; responses are rendered directly (the numeric
//! formats are plain Rust `Display`, which round-trips through the
//! parser).

use serde_json::Value;

/// An administrative operation carried by a request line (only honored
/// by the registry-backed server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminRequest {
    /// Hot-reload a snapshot file (plus optional sealed key segment).
    Reload {
        /// Path of the `.hdsn` snapshot on the server's filesystem.
        snapshot: String,
        /// Path of the sealed key segment, for locked snapshots.
        key: Option<String>,
    },
    /// Re-key the serving locked model with this seed.
    Rekey {
        /// Seed of the fresh random key (deterministic rotation).
        seed: u64,
    },
    /// Report registry + serving counters.
    Stats,
    /// Report the full telemetry snapshot (requires a server started
    /// with metrics enabled).
    Metrics,
    /// Begin a streamed snapshot transfer of `len` bytes (discards any
    /// transfer already in progress on this connection).
    XferBegin {
        /// Declared total snapshot length in bytes.
        len: u64,
    },
    /// Append a chunk of bytes to the in-progress snapshot transfer.
    XferChunk {
        /// Raw chunk bytes (base64-decoded from the wire).
        data: Vec<u8>,
    },
    /// Verify the completed transfer and hot-swap it in.
    XferCommit {
        /// Path of the sealed key segment, for locked snapshots.
        key: Option<String>,
    },
    /// Abort and discard the in-progress transfer.
    XferAbort,
}

/// A parsed classify request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifyRequest {
    /// Client-chosen correlation id, echoed back in the response.
    pub id: u64,
    /// Quantized feature row (level indices); empty for info/admin
    /// requests.
    pub levels: Vec<u16>,
    /// Whether to return the full per-class score vector.
    pub want_scores: bool,
    /// Whether this is a server-info request instead of a classify.
    pub want_info: bool,
    /// `Some(k)` turns the request into a top-k similarity search over
    /// the row memory instead of a top-1 classification.
    pub search_k: Option<usize>,
    /// Administrative operation, when this is an admin request.
    pub admin: Option<AdminRequest>,
}

/// One top-k search hit: a row memory index and its exact similarity
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchMatch {
    /// Row index in the serving model's row memory.
    pub row: u32,
    /// Exact similarity score of that row against the query.
    pub score: f64,
}

/// Server shape and runtime facts reported by an info response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Active SIMD kernel backend (`scalar`, `avx2`, or `portable`).
    pub backend: String,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Input feature count `N`.
    pub features: usize,
    /// Quantization level count `M`.
    pub levels: usize,
    /// Class count `C`.
    pub classes: usize,
    /// Active model generation (0 on a non-registry server).
    pub generation: u64,
    /// Active snapshot checksum, 16 hex digits (all zeros on a
    /// non-registry server).
    pub checksum: String,
    /// Whether the serving model runs in constant-time hardened mode.
    pub hardened: bool,
}

/// Identity of a freshly swapped-in generation (reload/rekey response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapInfo {
    /// New generation id.
    pub generation: u64,
    /// New snapshot checksum, 16 hex digits.
    pub checksum: String,
}

/// Registry + serving counters reported by a stats response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Currently serving generation id.
    pub generation: u64,
    /// Currently serving snapshot checksum, 16 hex digits.
    pub checksum: String,
    /// Whether the serving model is locked.
    pub locked: bool,
    /// Whether the serving model runs in constant-time hardened mode.
    pub hardened: bool,
    /// Completed reload swaps.
    pub reloads: u64,
    /// Completed rekey swaps.
    pub rekeys: u64,
    /// Completed rollbacks.
    pub rollbacks: u64,
    /// Requests answered since boot.
    pub requests: u64,
    /// Requests rejected by admission control since boot.
    pub throttled: u64,
    /// Seconds this server core has been running.
    pub uptime_secs: u64,
    /// Requests that arrived on the JSON wire.
    pub requests_json: u64,
    /// Requests that arrived on the binary wire.
    pub requests_binary: u64,
    /// Connections currently open.
    pub active_connections: u64,
}

/// Outcome of one row of a bulk classify (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct BulkOutcome {
    /// Predicted class, when the row succeeded.
    pub class: Option<usize>,
    /// Per-class scores, when requested and the row succeeded.
    pub scores: Option<Vec<f64>>,
    /// Error message, when the row was rejected.
    pub error: Option<String>,
}

/// A parsed classify response (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyResponse {
    /// Echoed correlation id.
    pub id: u64,
    /// Predicted class, when the request succeeded.
    pub class: Option<usize>,
    /// Per-class scores, when requested.
    pub scores: Option<Vec<f64>>,
    /// Top-k hits, when this answers a search request (best-first).
    pub matches: Option<Vec<SearchMatch>>,
    /// Server info, when this answers an info request.
    pub info: Option<ServerInfo>,
    /// New generation identity, when this answers a reload/rekey.
    pub swapped: Option<SwapInfo>,
    /// Counters, when this answers a stats request.
    pub stats: Option<StatsReport>,
    /// Per-row outcomes, in request order, when this answers a bulk
    /// classify frame.
    pub bulk: Option<Vec<BulkOutcome>>,
    /// Cumulative bytes staged so far, when this acks a snapshot
    /// transfer request.
    pub xfer_received: Option<u64>,
    /// Error message, when the request failed.
    pub error: Option<String>,
    /// Whether the error is an admission throttle (back off and retry
    /// later) rather than a hard failure.
    pub throttled: bool,
    /// Whether the error is pipeline back-pressure: the connection's
    /// in-flight window is full, so the client should drain responses
    /// before sending more requests.
    pub overloaded: bool,
}

/// Best-effort request-id recovery from a line that failed to parse as
/// JSON (or parsed without a numeric `id`): scans for an `"id"` key and
/// reads the digits after its colon. Pipelined clients have several
/// requests in flight at once, so an error they cannot correlate to a
/// request is an error they cannot handle — every failure response must
/// echo the id whenever any recognizable id is present, even on a
/// truncated or otherwise mangled line. Returns 0 when nothing
/// recoverable is found.
#[must_use]
pub fn recover_id(line: &str) -> u64 {
    let Some(key) = line.find("\"id\"") else {
        return 0;
    };
    let rest = line[key + 4..].trim_start();
    let Some(rest) = rest.strip_prefix(':') else {
        return 0;
    };
    let rest = rest.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or(0)
}

/// Renders a `u64` checksum as the wire's 16-hex-digit form.
#[must_use]
pub fn checksum_hex(checksum: u64) -> String {
    format!("{checksum:016x}")
}

/// Parses one request line.
///
/// # Errors
///
/// Returns `(id, message)` — `id` is the request's id when it could be
/// recovered (so the error response still correlates), 0 otherwise.
pub fn parse_request(line: &str) -> Result<ClassifyRequest, (u64, String)> {
    let value: Value = serde_json::from_str(line.trim())
        .map_err(|e| (recover_id(line), format!("malformed JSON: {e}")))?;
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or((recover_id(line), "missing numeric `id`".to_owned()))?;
    let bare = |admin: Option<AdminRequest>, want_info: bool| ClassifyRequest {
        id,
        levels: Vec::new(),
        want_scores: false,
        want_info,
        search_k: None,
        admin,
    };
    if matches!(value.get("info"), Some(Value::Bool(true))) {
        return Ok(bare(None, true));
    }
    if matches!(value.get("stats"), Some(Value::Bool(true))) {
        return Ok(bare(Some(AdminRequest::Stats), false));
    }
    if matches!(value.get("metrics"), Some(Value::Bool(true))) {
        return Ok(bare(Some(AdminRequest::Metrics), false));
    }
    if let Some(reload) = value.get("reload") {
        let snapshot = reload
            .get("snapshot")
            .and_then(Value::as_str)
            .ok_or((id, "`reload` needs a `snapshot` path".to_owned()))?
            .to_owned();
        let key = reload.get("key").and_then(Value::as_str).map(str::to_owned);
        return Ok(bare(Some(AdminRequest::Reload { snapshot, key }), false));
    }
    if let Some(rekey) = value.get("rekey") {
        let seed = rekey
            .as_u64()
            .ok_or((id, "`rekey` needs a numeric seed".to_owned()))?;
        return Ok(bare(Some(AdminRequest::Rekey { seed }), false));
    }
    if let Some(xfer) = value.get("xfer") {
        return parse_xfer(id, xfer).map(|admin| bare(Some(admin), false));
    }
    let levels_value = value
        .get("levels")
        .and_then(Value::as_array)
        .ok_or((id, "missing `levels` array".to_owned()))?;
    let mut levels = Vec::with_capacity(levels_value.len());
    for (i, lv) in levels_value.iter().enumerate() {
        let n = lv
            .as_u64()
            .and_then(|n| u16::try_from(n).ok())
            .ok_or((id, format!("level {i} is not a u16")))?;
        levels.push(n);
    }
    let want_scores = matches!(value.get("scores"), Some(Value::Bool(true)));
    let search_k = match value.get("search") {
        Some(search) => {
            let k = search
                .get("k")
                .and_then(Value::as_u64)
                .ok_or((id, "`search` needs a numeric `k`".to_owned()))?;
            if k == 0 || k > u64::from(u16::MAX) {
                return Err((id, format!("search k {k} out of range (1..=65535)")));
            }
            Some(k as usize)
        }
        None => None,
    };
    Ok(ClassifyRequest {
        id,
        levels,
        want_scores,
        want_info: false,
        search_k,
        admin: None,
    })
}

/// Parses the body of an `xfer` request object.
fn parse_xfer(id: u64, xfer: &Value) -> Result<AdminRequest, (u64, String)> {
    if let Some(len) = xfer.get("begin") {
        let len = len
            .as_u64()
            .ok_or((id, "`xfer.begin` needs a numeric byte length".to_owned()))?;
        return Ok(AdminRequest::XferBegin { len });
    }
    if let Some(chunk) = xfer.get("chunk") {
        let encoded = chunk
            .as_str()
            .ok_or((id, "`xfer.chunk` needs a base64 string".to_owned()))?;
        let data =
            base64_decode(encoded).map_err(|e| (id, format!("bad `xfer.chunk` base64: {e}")))?;
        return Ok(AdminRequest::XferChunk { data });
    }
    if let Some(commit) = xfer.get("commit") {
        let key = commit.get("key").and_then(Value::as_str).map(str::to_owned);
        return Ok(AdminRequest::XferCommit { key });
    }
    if matches!(xfer.get("abort"), Some(Value::Bool(true))) {
        return Ok(AdminRequest::XferAbort);
    }
    Err((
        id,
        "`xfer` needs one of `begin`, `chunk`, `commit` or `abort`".to_owned(),
    ))
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard padded base64 (RFC 4648) for `xfer.chunk`
/// payloads. Hand-rolled: the wire must not depend on crates the build
/// environment cannot fetch.
#[must_use]
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = u32::from(chunk[0]);
        let b1 = u32::from(chunk.get(1).copied().unwrap_or(0));
        let b2 = u32::from(chunk.get(2).copied().unwrap_or(0));
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(BASE64_ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(triple >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(triple >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            BASE64_ALPHABET[triple as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard padded base64.
///
/// # Errors
///
/// Returns a message on stray characters, bad length, or misplaced
/// padding.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, String> {
    fn val(b: u8) -> Result<u32, String> {
        match b {
            b'A'..=b'Z' => Ok(u32::from(b - b'A')),
            b'a'..=b'z' => Ok(u32::from(b - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(b - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("stray byte 0x{b:02x}")),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("length {} is not a multiple of 4", bytes.len()));
    }
    let quads = bytes.len() / 4;
    let mut out = Vec::with_capacity(quads * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let pad = if quad[3] == b'=' {
            if quad[2] == b'=' {
                2
            } else {
                1
            }
        } else {
            0
        };
        if pad > 0 && i + 1 != quads {
            return Err("`=` padding before the final group".to_owned());
        }
        if quad[..4 - pad].contains(&b'=') {
            return Err("`=` inside a group".to_owned());
        }
        let mut triple = 0u32;
        for &b in &quad[..4 - pad] {
            triple = (triple << 6) | val(b)?;
        }
        triple <<= 6 * pad as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad == 0 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

/// Renders an info request line (client side), with trailing newline.
#[must_use]
pub fn info_request_line(id: u64) -> String {
    format!("{{\"id\":{id},\"info\":true}}\n")
}

/// Renders a stats request line (client side), with trailing newline.
#[must_use]
pub fn stats_request_line(id: u64) -> String {
    format!("{{\"id\":{id},\"stats\":true}}\n")
}

/// Renders a metrics request line (client side), with trailing newline.
#[must_use]
pub fn metrics_request_line(id: u64) -> String {
    format!("{{\"id\":{id},\"metrics\":true}}\n")
}

/// Renders a reload request line (client side), with trailing newline.
/// Paths are JSON-escaped.
#[must_use]
pub fn reload_request_line(id: u64, snapshot: &str, key: Option<&str>) -> String {
    let mut out = format!(
        "{{\"id\":{id},\"reload\":{{\"snapshot\":\"{}\"",
        escape(snapshot)
    );
    if let Some(key) = key {
        out.push_str(&format!(",\"key\":\"{}\"", escape(key)));
    }
    out.push_str("}}\n");
    out
}

/// Renders a rekey request line (client side), with trailing newline.
#[must_use]
pub fn rekey_request_line(id: u64, seed: u64) -> String {
    format!("{{\"id\":{id},\"rekey\":{seed}}}\n")
}

/// Renders an info response line (with trailing newline). The backend
/// name is emitted as-is; backend names are plain identifiers.
#[must_use]
pub fn info_response(id: u64, info: &ServerInfo) -> String {
    format!(
        "{{\"id\":{id},\"info\":{{\"backend\":\"{}\",\"dim\":{},\"features\":{},\
         \"levels\":{},\"classes\":{},\"generation\":{},\"checksum\":\"{}\",\
         \"hardened\":{}}}}}\n",
        info.backend,
        info.dim,
        info.features,
        info.levels,
        info.classes,
        info.generation,
        info.checksum,
        info.hardened
    )
}

/// Renders a swap (reload/rekey success) response line.
#[must_use]
pub fn swap_response(id: u64, swap: &SwapInfo) -> String {
    format!(
        "{{\"id\":{id},\"swapped\":{{\"generation\":{},\"checksum\":\"{}\"}}}}\n",
        swap.generation, swap.checksum
    )
}

/// Renders a stats response line.
#[must_use]
pub fn stats_response(id: u64, stats: &StatsReport) -> String {
    format!(
        "{{\"id\":{id},\"stats\":{{\"generation\":{},\"checksum\":\"{}\",\"locked\":{},\
         \"hardened\":{},\"reloads\":{},\"rekeys\":{},\"rollbacks\":{},\"requests\":{},\
         \"throttled\":{},\"uptime_secs\":{},\"requests_json\":{},\"requests_binary\":{},\
         \"active_connections\":{}}}}}\n",
        stats.generation,
        stats.checksum,
        stats.locked,
        stats.hardened,
        stats.reloads,
        stats.rekeys,
        stats.rollbacks,
        stats.requests,
        stats.throttled,
        stats.uptime_secs,
        stats.requests_json,
        stats.requests_binary,
        stats.active_connections
    )
}

/// Renders an xfer-begin request line (client side), with trailing
/// newline.
#[must_use]
pub fn xfer_begin_line(id: u64, len: u64) -> String {
    format!("{{\"id\":{id},\"xfer\":{{\"begin\":{len}}}}}\n")
}

/// Renders an xfer-chunk request line (client side), with trailing
/// newline. The chunk bytes are base64-encoded.
#[must_use]
pub fn xfer_chunk_line(id: u64, data: &[u8]) -> String {
    format!(
        "{{\"id\":{id},\"xfer\":{{\"chunk\":\"{}\"}}}}\n",
        base64_encode(data)
    )
}

/// Renders an xfer-commit request line (client side), with trailing
/// newline. The key path is JSON-escaped.
#[must_use]
pub fn xfer_commit_line(id: u64, key: Option<&str>) -> String {
    match key {
        Some(key) => format!(
            "{{\"id\":{id},\"xfer\":{{\"commit\":{{\"key\":\"{}\"}}}}}}\n",
            escape(key)
        ),
        None => format!("{{\"id\":{id},\"xfer\":{{\"commit\":{{}}}}}}\n"),
    }
}

/// Renders an xfer-abort request line (client side), with trailing
/// newline.
#[must_use]
pub fn xfer_abort_line(id: u64) -> String {
    format!("{{\"id\":{id},\"xfer\":{{\"abort\":true}}}}\n")
}

/// Renders a snapshot-transfer ack line: the cumulative bytes staged so
/// far on this connection's transfer.
#[must_use]
pub fn xfer_response(id: u64, received: u64) -> String {
    format!("{{\"id\":{id},\"xfer\":{{\"received\":{received}}}}}\n")
}

/// Renders a snapshot-transfer abort ack line (bytes discarded).
#[must_use]
pub fn xfer_abort_response(id: u64, received: u64) -> String {
    format!("{{\"id\":{id},\"xfer\":{{\"received\":{received},\"aborted\":true}}}}\n")
}

/// Renders a request line (client side). The line includes the trailing
/// newline.
#[must_use]
pub fn request_line(id: u64, levels: &[u16], want_scores: bool) -> String {
    let mut out = format!("{{\"id\":{id},\"levels\":[");
    for (i, lv) in levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&lv.to_string());
    }
    out.push(']');
    if want_scores {
        out.push_str(",\"scores\":true");
    }
    out.push_str("}\n");
    out
}

/// Renders a top-k search request line (client side), with trailing
/// newline.
#[must_use]
pub fn search_request_line(id: u64, levels: &[u16], k: usize) -> String {
    let mut out = format!("{{\"id\":{id},\"levels\":[");
    for (i, lv) in levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&lv.to_string());
    }
    out.push_str(&format!("],\"search\":{{\"k\":{k}}}}}\n"));
    out
}

/// Renders a top-k search response line (with trailing newline), hits
/// best-first.
#[must_use]
pub fn matches_response(id: u64, matches: &[SearchMatch]) -> String {
    let mut out = format!("{{\"id\":{id},\"matches\":[");
    for (i, m) in matches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `{:?}` keeps a decimal point / exponent, so the score reads
        // back as a float.
        out.push_str(&format!("{{\"row\":{},\"score\":{:?}}}", m.row, m.score));
    }
    out.push_str("]}\n");
    out
}

/// Renders a success response line (with trailing newline).
#[must_use]
pub fn ok_response(id: u64, class: usize, scores: Option<&[f64]>) -> String {
    let mut out = format!("{{\"id\":{id},\"class\":{class}");
    if let Some(scores) = scores {
        out.push_str(",\"scores\":[");
        for (i, s) in scores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // `{s:?}` keeps a decimal point / exponent, so the value
            // reads back as a float.
            out.push_str(&format!("{s:?}"));
        }
        out.push(']');
    }
    out.push_str("}\n");
    out
}

/// Renders a bulk-classify response line: one outcome object per row,
/// in request order. The JSON wire never carries bulk requests (they
/// are a binary-frame optimization), but rendering keeps the completion
/// path wire-agnostic.
#[must_use]
pub fn bulk_response(id: u64, items: &[crate::batcher::BulkItem]) -> String {
    use crate::batcher::BulkItem;
    let mut out = format!("{{\"id\":{id},\"bulk\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            BulkItem::Class(class) => out.push_str(&format!("{{\"class\":{class}}}")),
            BulkItem::ClassWithScores(class, scores) => {
                out.push_str(&format!("{{\"class\":{class},\"scores\":["));
                for (j, s) in scores.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    // `{s:?}` keeps a decimal point / exponent, so the
                    // value reads back as a float.
                    out.push_str(&format!("{s:?}"));
                }
                out.push_str("]}");
            }
            BulkItem::Rejected(msg) => {
                out.push_str(&format!("{{\"error\":\"{}\"}}", escape(msg)));
            }
        }
    }
    out.push_str("]}\n");
    out
}

fn escape(message: &str) -> String {
    message
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Renders an error response line (with trailing newline).
#[must_use]
pub fn error_response(id: u64, message: &str) -> String {
    format!("{{\"id\":{id},\"error\":\"{}\"}}\n", escape(message))
}

/// Renders a structured admission-throttle error response line: carries
/// `"throttled":true` so clients can tell back-off from hard failure.
#[must_use]
pub fn throttle_response(id: u64, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"error\":\"{}\",\"throttled\":true}}\n",
        escape(message)
    )
}

/// Renders a structured pipeline-overload error response line: carries
/// `"overloaded":true` so pipelined clients know to drain in-flight
/// responses before issuing more requests.
#[must_use]
pub fn overload_response(id: u64, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"error\":\"{}\",\"overloaded\":true}}\n",
        escape(message)
    )
}

/// Parses one response line (client side).
///
/// # Errors
///
/// Returns a message for malformed lines.
pub fn parse_response(line: &str) -> Result<ClassifyResponse, String> {
    let value: Value =
        serde_json::from_str(line.trim()).map_err(|e| format!("malformed JSON: {e}"))?;
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing numeric `id`".to_owned())?;
    let class = value
        .get("class")
        .and_then(Value::as_u64)
        .map(|c| c as usize);
    let scores = match value.get("scores").and_then(Value::as_array) {
        Some(arr) => {
            let mut out = Vec::with_capacity(arr.len());
            for s in arr {
                out.push(s.as_f64().ok_or_else(|| "non-numeric score".to_owned())?);
            }
            Some(out)
        }
        None => None,
    };
    let info = match value.get("info") {
        Some(obj) => Some(ServerInfo {
            backend: obj
                .get("backend")
                .and_then(Value::as_str)
                .ok_or_else(|| "info without `backend`".to_owned())?
                .to_owned(),
            dim: info_field(obj, "dim")?,
            features: info_field(obj, "features")?,
            levels: info_field(obj, "levels")?,
            classes: info_field(obj, "classes")?,
            generation: obj.get("generation").and_then(Value::as_u64).unwrap_or(0),
            checksum: obj
                .get("checksum")
                .and_then(Value::as_str)
                .unwrap_or("0000000000000000")
                .to_owned(),
            // Absent on pre-hardening servers; false keeps old
            // responses parseable.
            hardened: matches!(obj.get("hardened"), Some(Value::Bool(true))),
        }),
        None => None,
    };
    let swapped = match value.get("swapped") {
        Some(obj) => Some(SwapInfo {
            generation: obj
                .get("generation")
                .and_then(Value::as_u64)
                .ok_or_else(|| "swap without numeric `generation`".to_owned())?,
            checksum: obj
                .get("checksum")
                .and_then(Value::as_str)
                .ok_or_else(|| "swap without `checksum`".to_owned())?
                .to_owned(),
        }),
        None => None,
    };
    let stats = match value.get("stats") {
        Some(obj) => Some(StatsReport {
            generation: stat_field(obj, "generation")?,
            checksum: obj
                .get("checksum")
                .and_then(Value::as_str)
                .ok_or_else(|| "stats without `checksum`".to_owned())?
                .to_owned(),
            locked: matches!(obj.get("locked"), Some(Value::Bool(true))),
            hardened: matches!(obj.get("hardened"), Some(Value::Bool(true))),
            reloads: stat_field(obj, "reloads")?,
            rekeys: stat_field(obj, "rekeys")?,
            rollbacks: stat_field(obj, "rollbacks")?,
            requests: stat_field(obj, "requests")?,
            throttled: stat_field(obj, "throttled")?,
            // Absent on pre-telemetry servers; default 0 keeps old
            // responses parseable.
            uptime_secs: opt_stat_field(obj, "uptime_secs"),
            requests_json: opt_stat_field(obj, "requests_json"),
            requests_binary: opt_stat_field(obj, "requests_binary"),
            active_connections: opt_stat_field(obj, "active_connections"),
        }),
        None => None,
    };
    let matches = match value.get("matches").and_then(Value::as_array) {
        Some(arr) => {
            let mut out = Vec::with_capacity(arr.len());
            for m in arr {
                let row = m
                    .get("row")
                    .and_then(Value::as_u64)
                    .and_then(|r| u32::try_from(r).ok())
                    .ok_or_else(|| "match without numeric `row`".to_owned())?;
                let score = m
                    .get("score")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "match without numeric `score`".to_owned())?;
                out.push(SearchMatch { row, score });
            }
            Some(out)
        }
        None => None,
    };
    let bulk = match value.get("bulk").and_then(Value::as_array) {
        Some(arr) => {
            let mut out = Vec::with_capacity(arr.len());
            for item in arr {
                let class = item
                    .get("class")
                    .and_then(Value::as_u64)
                    .map(|c| c as usize);
                let scores = match item.get("scores").and_then(Value::as_array) {
                    Some(sarr) => {
                        let mut s = Vec::with_capacity(sarr.len());
                        for v in sarr {
                            s.push(
                                v.as_f64()
                                    .ok_or_else(|| "non-numeric bulk score".to_owned())?,
                            );
                        }
                        Some(s)
                    }
                    None => None,
                };
                let error = item.get("error").and_then(Value::as_str).map(str::to_owned);
                if class.is_none() && error.is_none() {
                    return Err("bulk item carries neither `class` nor `error`".to_owned());
                }
                out.push(BulkOutcome {
                    class,
                    scores,
                    error,
                });
            }
            Some(out)
        }
        None => None,
    };
    let xfer_received = value
        .get("xfer")
        .and_then(|x| x.get("received"))
        .and_then(Value::as_u64);
    let error = value
        .get("error")
        .and_then(Value::as_str)
        .map(str::to_owned);
    let throttled = matches!(value.get("throttled"), Some(Value::Bool(true)));
    let overloaded = matches!(value.get("overloaded"), Some(Value::Bool(true)));
    if class.is_none()
        && matches.is_none()
        && bulk.is_none()
        && error.is_none()
        && info.is_none()
        && swapped.is_none()
        && stats.is_none()
        && xfer_received.is_none()
    {
        return Err(
            "response carries neither `class`, `matches`, `bulk`, `info`, `swapped`, `stats`, \
             `xfer` nor `error`"
                .to_owned(),
        );
    }
    Ok(ClassifyResponse {
        id,
        class,
        scores,
        matches,
        info,
        swapped,
        stats,
        bulk,
        xfer_received,
        error,
        throttled,
        overloaded,
    })
}

/// Extracts one numeric field of an info response object.
fn info_field(obj: &Value, key: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("info without numeric `{key}`"))
}

/// Extracts one numeric field of a stats response object.
fn stat_field(obj: &Value, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("stats without numeric `{key}`"))
}

/// Extracts an optional numeric stats field (0 when absent).
fn opt_stat_field(obj: &Value, key: &str) -> u64 {
    obj.get(key).and_then(Value::as_u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let line = request_line(42, &[0, 3, 65535], true);
        let req = parse_request(&line).unwrap();
        assert_eq!(
            req,
            ClassifyRequest {
                id: 42,
                levels: vec![0, 3, 65535],
                want_scores: true,
                want_info: false,
                search_k: None,
                admin: None,
            }
        );
        let plain = parse_request(&request_line(7, &[1], false)).unwrap();
        assert!(!plain.want_scores);
    }

    #[test]
    fn search_roundtrip() {
        let req = parse_request(&search_request_line(13, &[0, 2, 1], 5)).unwrap();
        assert_eq!(req.id, 13);
        assert_eq!(req.levels, vec![0, 2, 1]);
        assert_eq!(req.search_k, Some(5));
        assert!(req.admin.is_none() && !req.want_info && !req.want_scores);

        let hits = [
            SearchMatch {
                row: 41,
                score: 0.9375,
            },
            SearchMatch {
                row: 7,
                score: -0.125,
            },
        ];
        let resp = parse_response(&matches_response(13, &hits)).unwrap();
        assert_eq!(resp.id, 13);
        assert_eq!(resp.matches, Some(hits.to_vec()));
        assert!(resp.class.is_none() && resp.error.is_none());

        // Empty hit lists are a valid payload (k = 0 never reaches the
        // wire, but an empty memory could produce this).
        let resp = parse_response(&matches_response(14, &[])).unwrap();
        assert_eq!(resp.matches, Some(Vec::new()));

        // k bounds are enforced at parse time, with the id kept.
        let (id, msg) =
            parse_request("{\"id\":9,\"levels\":[1],\"search\":{\"k\":0}}").unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("out of range"));
        let (id, _) =
            parse_request("{\"id\":8,\"levels\":[1],\"search\":{\"k\":70000}}").unwrap_err();
        assert_eq!(id, 8);
        let (id, msg) = parse_request("{\"id\":7,\"levels\":[1],\"search\":{}}").unwrap_err();
        assert_eq!(id, 7);
        assert!(msg.contains('k'));
    }

    #[test]
    fn info_roundtrip() {
        let req = parse_request(&info_request_line(11)).unwrap();
        assert!(req.want_info);
        assert!(req.admin.is_none());
        let info = ServerInfo {
            backend: "avx2".to_owned(),
            dim: 10_000,
            features: 64,
            levels: 16,
            classes: 8,
            generation: 3,
            checksum: checksum_hex(0xDEAD_BEEF),
            hardened: true,
        };
        let resp = parse_response(&info_response(11, &info)).unwrap();
        assert_eq!(resp.id, 11);
        assert_eq!(resp.info, Some(info));
        assert!(resp.class.is_none() && resp.error.is_none());
    }

    #[test]
    fn admin_request_roundtrips() {
        let req = parse_request(&stats_request_line(1)).unwrap();
        assert_eq!(req.admin, Some(AdminRequest::Stats));

        let req = parse_request(&reload_request_line(2, "/m/v7.hdsn", Some("/k/v7.hdky"))).unwrap();
        assert_eq!(
            req.admin,
            Some(AdminRequest::Reload {
                snapshot: "/m/v7.hdsn".to_owned(),
                key: Some("/k/v7.hdky".to_owned()),
            })
        );
        let req = parse_request(&reload_request_line(3, "/m/v8.hdsn", None)).unwrap();
        assert_eq!(
            req.admin,
            Some(AdminRequest::Reload {
                snapshot: "/m/v8.hdsn".to_owned(),
                key: None,
            })
        );

        let req = parse_request(&rekey_request_line(4, 20_240_317)).unwrap();
        assert_eq!(req.admin, Some(AdminRequest::Rekey { seed: 20_240_317 }));

        // Malformed admin requests keep the id.
        let (id, msg) = parse_request("{\"id\":9,\"reload\":{}}").unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("snapshot"));
        let (id, _) = parse_request("{\"id\":8,\"rekey\":\"soon\"}").unwrap_err();
        assert_eq!(id, 8);
    }

    #[test]
    fn swap_and_stats_roundtrip() {
        let swap = SwapInfo {
            generation: 4,
            checksum: checksum_hex(7),
        };
        let resp = parse_response(&swap_response(6, &swap)).unwrap();
        assert_eq!(resp.swapped, Some(swap));

        let stats = StatsReport {
            generation: 4,
            checksum: checksum_hex(7),
            locked: true,
            hardened: true,
            reloads: 1,
            rekeys: 2,
            rollbacks: 0,
            requests: 9000,
            throttled: 12,
            uptime_secs: 3600,
            requests_json: 8000,
            requests_binary: 1000,
            active_connections: 7,
        };
        let resp = parse_response(&stats_response(5, &stats)).unwrap();
        assert_eq!(resp.stats, Some(stats));

        // Pre-telemetry stats lines (no uptime/wire/connection fields)
        // still parse, defaulting the new fields to 0.
        let legacy = "{\"id\":5,\"stats\":{\"generation\":4,\"checksum\":\"0000000000000007\",\
                      \"locked\":true,\"reloads\":1,\"rekeys\":2,\"rollbacks\":0,\
                      \"requests\":9000,\"throttled\":12}}\n";
        let resp = parse_response(legacy).unwrap();
        let got = resp.stats.unwrap();
        assert_eq!(got.uptime_secs, 0);
        assert_eq!(got.requests_json, 0);
        assert_eq!(got.active_connections, 0);
        assert!(!got.hardened, "pre-hardening stats default to false");
    }

    #[test]
    fn metrics_request_parses_as_admin() {
        let req = parse_request(&metrics_request_line(6)).unwrap();
        assert_eq!(req.admin, Some(AdminRequest::Metrics));
        assert!(!req.want_info && req.levels.is_empty());
    }

    #[test]
    fn throttle_is_structured() {
        let resp = parse_response(&throttle_response(3, "query budget exhausted")).unwrap();
        assert!(resp.throttled);
        assert_eq!(resp.error.as_deref(), Some("query budget exhausted"));
        // Plain errors are not throttles.
        let resp = parse_response(&error_response(3, "bad row")).unwrap();
        assert!(!resp.throttled);
    }

    #[test]
    fn response_roundtrip() {
        let ok = parse_response(&ok_response(1, 3, None)).unwrap();
        assert_eq!(ok.id, 1);
        assert_eq!(ok.class, Some(3));
        assert!(ok.scores.is_none() && ok.error.is_none());

        let scored = parse_response(&ok_response(2, 0, Some(&[0.5, -1.0, 0.125]))).unwrap();
        assert_eq!(scored.scores, Some(vec![0.5, -1.0, 0.125]));

        let err = parse_response(&error_response(3, "bad \"row\"\nhere")).unwrap();
        assert_eq!(err.id, 3);
        assert_eq!(err.error.as_deref(), Some("bad \"row\"\nhere"));
        assert!(err.class.is_none());
    }

    #[test]
    fn malformed_requests_keep_recoverable_id() {
        assert_eq!(parse_request("not json").unwrap_err().0, 0);
        assert_eq!(parse_request("{\"levels\":[1]}").unwrap_err().0, 0);
        let (id, msg) = parse_request("{\"id\":9}").unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("levels"));
        let (id, _) = parse_request("{\"id\":5,\"levels\":[1,99999]}").unwrap_err();
        assert_eq!(id, 5);
    }

    /// Pipelined clients must be able to match *every* failure response
    /// to a request: even JSON that fails to parse outright echoes the
    /// id when one is recognizable, and the error round-trips back
    /// through the response parser with that id intact.
    #[test]
    fn parse_failures_echo_recoverable_id_roundtrip() {
        // Truncated mid-array: not valid JSON, but the id is right there.
        let (id, msg) = parse_request("{\"id\":7,\"levels\":[1,").unwrap_err();
        assert_eq!(id, 7, "truncated request must keep its id");
        let resp = parse_response(&error_response(id, &msg)).unwrap();
        assert_eq!(resp.id, 7);
        assert!(resp.error.is_some());

        // Unquoted garbage after the id.
        let (id, _) = parse_request("{\"id\": 31415, oops}").unwrap_err();
        assert_eq!(id, 31415);

        // `id` as a non-numeric value still recovers 0, never panics.
        let (id, _) = parse_request("{\"id\":\"seven\",\"levels\":[1]}").unwrap_err();
        assert_eq!(id, 0);

        assert_eq!(recover_id("{\"id\":42"), 42);
        assert_eq!(recover_id("{\"id\" : 42 ,"), 42);
        assert_eq!(recover_id("no id here"), 0);
        assert_eq!(recover_id("{\"id\":}"), 0);
    }

    #[test]
    fn overload_is_structured() {
        let resp =
            parse_response(&overload_response(4, "pipeline window full (64 in flight)")).unwrap();
        assert!(resp.overloaded && !resp.throttled);
        assert_eq!(resp.id, 4);
        // Throttles and plain errors are not overloads.
        assert!(
            !parse_response(&throttle_response(5, "budget"))
                .unwrap()
                .overloaded
        );
        assert!(
            !parse_response(&error_response(6, "bad row"))
                .unwrap()
                .overloaded
        );
    }

    #[test]
    fn response_without_payload_is_rejected() {
        assert!(parse_response("{\"id\":1}").is_err());
    }

    #[test]
    fn base64_roundtrips_all_lengths() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        for take in 0..data.len() {
            let encoded = base64_encode(&data[..take]);
            assert_eq!(base64_decode(&encoded).unwrap(), &data[..take]);
        }
        assert_eq!(base64_encode(b"HDSN"), "SERTTg==");
        assert_eq!(base64_decode("SERTTg==").unwrap(), b"HDSN");
        // Malformed inputs are rejected, never panic.
        assert!(base64_decode("abc").is_err());
        assert!(base64_decode("ab=c").is_err());
        assert!(base64_decode("====").is_err());
        assert!(base64_decode("ab==cdef").is_err());
        assert!(base64_decode("ab~d").is_err());
    }

    #[test]
    fn xfer_request_roundtrips() {
        let req = parse_request(&xfer_begin_line(1, 1 << 20)).unwrap();
        assert_eq!(req.admin, Some(AdminRequest::XferBegin { len: 1 << 20 }));

        let req = parse_request(&xfer_chunk_line(2, &[0, 1, 2, 0xFF])).unwrap();
        assert_eq!(
            req.admin,
            Some(AdminRequest::XferChunk {
                data: vec![0, 1, 2, 0xFF],
            })
        );

        let req = parse_request(&xfer_commit_line(3, Some("/k/v7.hdky"))).unwrap();
        assert_eq!(
            req.admin,
            Some(AdminRequest::XferCommit {
                key: Some("/k/v7.hdky".to_owned()),
            })
        );
        let req = parse_request(&xfer_commit_line(4, None)).unwrap();
        assert_eq!(req.admin, Some(AdminRequest::XferCommit { key: None }));

        let req = parse_request(&xfer_abort_line(5)).unwrap();
        assert_eq!(req.admin, Some(AdminRequest::XferAbort));

        // Malformed xfer requests keep the id.
        let (id, msg) = parse_request("{\"id\":9,\"xfer\":{}}").unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("begin"));
        let (id, msg) = parse_request("{\"id\":8,\"xfer\":{\"chunk\":\"a\"}}").unwrap_err();
        assert_eq!(id, 8);
        assert!(msg.contains("base64"));
        let (id, _) = parse_request("{\"id\":7,\"xfer\":{\"begin\":\"big\"}}").unwrap_err();
        assert_eq!(id, 7);
    }

    #[test]
    fn xfer_ack_roundtrips() {
        let resp = parse_response(&xfer_response(6, 65_536)).unwrap();
        assert_eq!(resp.id, 6);
        assert_eq!(resp.xfer_received, Some(65_536));
        assert!(resp.error.is_none());
        let resp = parse_response(&xfer_abort_response(7, 128)).unwrap();
        assert_eq!(resp.xfer_received, Some(128));
    }

    #[test]
    fn bulk_response_roundtrips() {
        use crate::batcher::BulkItem;
        let items = [
            BulkItem::Class(4),
            BulkItem::ClassWithScores(1, vec![0.5, -0.25]),
            BulkItem::Rejected("row has 2 levels, model expects 4".to_owned()),
        ];
        let resp = parse_response(&bulk_response(21, &items)).unwrap();
        assert_eq!(resp.id, 21);
        let got = resp.bulk.unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].class, Some(4));
        assert!(got[0].scores.is_none() && got[0].error.is_none());
        assert_eq!(got[1].class, Some(1));
        assert_eq!(got[1].scores, Some(vec![0.5, -0.25]));
        assert_eq!(
            got[2].error.as_deref(),
            Some("row has 2 levels, model expects 4")
        );
        assert!(got[2].class.is_none());
    }

    #[test]
    fn checksum_hex_is_16_digits() {
        assert_eq!(checksum_hex(0), "0000000000000000");
        assert_eq!(checksum_hex(u64::MAX), "ffffffffffffffff");
        assert_eq!(checksum_hex(0xAB), "00000000000000ab");
    }
}
