//! The TCP front end: accept loop, per-connection handlers, graceful
//! shutdown.
//!
//! [`serve`] blocks the calling thread until `shutdown` is raised:
//! connection handlers and batch workers run on `std::thread::scope`
//! threads borrowing the session, so the server needs no `'static`
//! state and no external runtime. Shutdown is graceful — the accept
//! loop stops, handlers notice within their read-timeout tick and hang
//! up, the queue drains, workers exit.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use hdc_model::{Encoder, InferenceSession};

use crate::batcher::{worker_loop, BatchConfig, BatchQueue, Job, JobResult};
use crate::protocol;

/// How often blocked I/O re-checks the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Counters reported when the server exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (success or protocol error).
    pub requests: u64,
    /// Requests that reached the batch workers and were classified —
    /// `requests − classified` is the protocol-rejection count.
    pub classified: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// Serves classify traffic on `listener` until `shutdown` is raised.
///
/// Every connection speaks the line-JSON protocol ([`protocol`]);
/// requests from all connections funnel into one [`BatchQueue`] and are
/// answered by `config.workers` fused batch calls.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve<E: Encoder + Sync>(
    listener: TcpListener,
    session: &InferenceSession<'_, E>,
    config: &BatchConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let queue = BatchQueue::new();
    let requests = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let mut connections = 0u64;

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.workers.max(1))
            .map(|_| scope.spawn(|| worker_loop(&queue, session, config, &served)))
            .collect();

        let mut handler_handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let queue = &queue;
                    let requests = &requests;
                    handler_handles.push(scope.spawn(move || {
                        let _ = handle_connection(stream, session, queue, shutdown, requests);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => break,
            }
        }

        // Graceful shutdown: stop accepting, let handlers drain their
        // in-flight requests (they exit within a read-timeout tick),
        // then close the queue so workers finish the backlog and exit.
        for h in handler_handles {
            let _ = h.join();
        }
        queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServeStats {
        requests: requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
    })
}

/// One connection: read request lines, enqueue, await the batched
/// result, write the response line.
fn handle_connection<E: Encoder + Sync>(
    stream: TcpStream,
    session: &InferenceSession<'_, E>,
    queue: &BatchQueue,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let (tx, rx) = mpsc::channel();
    let mut line = String::new();
    loop {
        // `line` is NOT cleared at the top: a read timeout may leave a
        // partially received request in it, and the next tick must
        // append the rest instead of dropping the fragment.
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up (any partial line is theirs)
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = answer(&line, session, queue, &tx, &rx);
                    requests.fetch_add(1, Ordering::Relaxed);
                    writer.write_all(response.as_bytes())?;
                    writer.flush()?;
                }
                line.clear();
                // A client that never pauses must not be able to pin
                // this handler past shutdown: in-flight request is
                // answered, then the connection closes.
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// Validates one request line, runs it through the batching queue, and
/// renders the response line.
fn answer<E: Encoder + Sync>(
    line: &str,
    session: &InferenceSession<'_, E>,
    queue: &BatchQueue,
    tx: &mpsc::Sender<JobResult>,
    rx: &mpsc::Receiver<JobResult>,
) -> String {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => return protocol::error_response(id, &msg),
    };
    if request.want_info {
        return protocol::info_response(
            request.id,
            &protocol::ServerInfo {
                backend: session.kernel_backend().to_owned(),
                dim: session.dim(),
                features: session.n_features(),
                levels: session.m_levels(),
                classes: session.n_classes(),
            },
        );
    }
    if request.levels.len() != session.n_features() {
        return protocol::error_response(
            request.id,
            &format!(
                "row has {} levels, model expects {}",
                request.levels.len(),
                session.n_features()
            ),
        );
    }
    if let Some(bad) = request
        .levels
        .iter()
        .position(|&lv| usize::from(lv) >= session.m_levels())
    {
        return protocol::error_response(
            request.id,
            &format!(
                "level {} at feature {bad} out of range (M = {})",
                request.levels[bad],
                session.m_levels()
            ),
        );
    }
    queue.push(Job {
        levels: request.levels,
        want_scores: request.want_scores,
        tx: tx.clone(),
    });
    match rx.recv() {
        Ok(JobResult::Class(class)) => protocol::ok_response(request.id, class, None),
        Ok(JobResult::ClassWithScores(class, scores)) => {
            protocol::ok_response(request.id, class, Some(&scores))
        }
        Err(_) => protocol::error_response(request.id, "server shutting down"),
    }
}
