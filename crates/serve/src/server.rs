//! The TCP front end: accept loop, multiplexed per-connection
//! handlers, graceful shutdown — in two flavors.
//!
//! [`serve`] drives one fixed session (generic over
//! [`ClassifySession`], so borrowed and owned sessions both work).
//! [`serve_registry`] drives a [`ModelRegistry`]: every batch grabs the
//! current generation with one refcount bump, admin requests
//! (`reload` / `rekey` / `stats`) swap generations *behind* the running
//! server, and a per-connection [`ConnectionAdmission`] enforces query
//! budgets, rate limits and feature-sweep detection with structured
//! throttle errors.
//!
//! ## Connection multiplexing
//!
//! Every connection is a **pipeline**: the read side parses requests
//! (line-JSON or binary frames, negotiated by first-byte sniffing — see
//! [`wire`]) and enqueues them without waiting for answers; a dedicated
//! per-connection writer thread interleaves responses as batch workers
//! finish, matched to requests by id, possibly out of order. A client
//! may keep up to `pipeline_window` classify requests in flight; the
//! window is enforced with a structured *overload* error
//! (`"overloaded":true` / error-frame flag bit 1), so well-behaved
//! clients drain responses instead of stalling the server. Serial
//! request/response clients are a degenerate pipeline of depth 1 and
//! behave exactly as they did before multiplexing.
//!
//! Both servers block the calling thread until `shutdown` is raised:
//! connection handlers, writers and batch workers run on
//! `std::thread::scope` threads, so the server needs no `'static` state
//! and no external runtime. Shutdown is graceful — the accept loop
//! stops, readers notice within their read-timeout tick and stop
//! accepting new requests, in-flight requests are answered, writers
//! drain, the queue closes, workers exit.
//!
//! During a swap, in-flight requests finish on the generation their
//! batch grabbed; requests that raced a *shape-changing* reload are
//! answered with a per-request error instead of being dropped (the
//! worker re-validates every row against the generation it actually
//! runs).

use std::collections::HashSet;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use hdc_model::ClassifySession;
use hdc_store::ModelRegistry;

use crate::admission::{AdmissionConfig, ConnectionAdmission};
use crate::batcher::{worker_loop, BatchConfig, BatchQueue, Completion, Delivery, Job, JobResult};
use crate::protocol;
use crate::wire::{self, WireMode};

/// How often blocked I/O re-checks the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Counters reported when the server exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (success or protocol error).
    pub requests: u64,
    /// Requests that reached the batch workers and were classified —
    /// `requests − classified` is the protocol-rejection count.
    pub classified: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests rejected by admission control (always 0 for the
    /// non-registry [`serve`]).
    pub throttled: u64,
}

/// Configuration of the registry-backed server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegistryServeConfig {
    /// Batching queue, worker-pool and pipeline-window parameters.
    pub batch: BatchConfig,
    /// Per-connection admission thresholds.
    pub admission: AdmissionConfig,
}

// ---------------------------------------------------------------------
// Per-request policy (shared by both server flavors)
// ---------------------------------------------------------------------

/// What a connection needs from its server flavor to answer requests:
/// the model shape, per-row validation, admission and admin handling.
/// The connection machinery (sniffing, framing, pipelining, the writer)
/// is identical for both flavors.
trait RequestBrain {
    /// Shape/runtime facts for an `info` response.
    fn server_info(&mut self) -> protocol::ServerInfo;
    /// Row validation against the currently served model; `Some` is the
    /// rejection message.
    fn validate_levels(&mut self, levels: &[u16]) -> Option<String>;
    /// Admission check; `Err` is the throttle message.
    fn admit(&mut self, levels: &[u16]) -> Result<(), String>;
    /// Executes one admin operation, returning the rendered JSON
    /// response line (admin is deliberately JSON-only; binary
    /// connections cannot express it).
    fn admin(&mut self, id: u64, admin: &protocol::AdminRequest) -> String;
}

/// Brain of the fixed-session server.
struct SessionBrain<'a, S: ClassifySession> {
    session: &'a S,
}

impl<S: ClassifySession> RequestBrain for SessionBrain<'_, S> {
    fn server_info(&mut self) -> protocol::ServerInfo {
        protocol::ServerInfo {
            backend: self.session.kernel_backend().to_owned(),
            dim: self.session.dim(),
            features: self.session.n_features(),
            levels: self.session.m_levels(),
            classes: self.session.n_classes(),
            generation: 0,
            checksum: protocol::checksum_hex(0),
        }
    }

    fn validate_levels(&mut self, levels: &[u16]) -> Option<String> {
        validate_against(levels, self.session)
    }

    fn admit(&mut self, _levels: &[u16]) -> Result<(), String> {
        Ok(())
    }

    fn admin(&mut self, id: u64, _admin: &protocol::AdminRequest) -> String {
        protocol::error_response(id, "admin requests need a registry-backed server")
    }
}

/// Brain of the registry-backed server: one admission state per
/// connection, every check against the *current* generation.
struct RegistryBrain<'a, 'ctx> {
    ctx: &'ctx RegistryCtx<'a>,
    admission: ConnectionAdmission,
}

impl RequestBrain for RegistryBrain<'_, '_> {
    fn server_info(&mut self) -> protocol::ServerInfo {
        let generation = self.ctx.registry.current();
        let session = generation.session();
        protocol::ServerInfo {
            backend: session.kernel_backend().to_owned(),
            dim: session.dim(),
            features: session.n_features(),
            levels: session.m_levels(),
            classes: session.n_classes(),
            generation: generation.id(),
            checksum: protocol::checksum_hex(generation.checksum()),
        }
    }

    fn validate_levels(&mut self, levels: &[u16]) -> Option<String> {
        let generation = self.ctx.registry.current();
        validate_against(levels, generation.session())
    }

    fn admit(&mut self, levels: &[u16]) -> Result<(), String> {
        self.admission.admit(levels).map_err(|r| r.to_string())
    }

    fn admin(&mut self, id: u64, admin: &protocol::AdminRequest) -> String {
        answer_admin(id, admin, self.ctx)
    }
}

/// Shape/range validation of a classify row against a session; `Some`
/// is the rejection message (rendered per wire mode by the caller).
fn validate_against<S: ClassifySession>(levels: &[u16], session: &S) -> Option<String> {
    if levels.len() != session.n_features() {
        return Some(format!(
            "row has {} levels, model expects {}",
            levels.len(),
            session.n_features()
        ));
    }
    if let Some(bad) = levels
        .iter()
        .position(|&lv| usize::from(lv) >= session.m_levels())
    {
        return Some(format!(
            "level {} at feature {bad} out of range (M = {})",
            levels[bad],
            session.m_levels()
        ));
    }
    None
}

// ---------------------------------------------------------------------
// Wire-mode-agnostic rendering
// ---------------------------------------------------------------------

/// Renders an error response in the connection's wire format.
fn render_error(
    mode: WireMode,
    id: u64,
    message: &str,
    throttled: bool,
    overloaded: bool,
) -> Vec<u8> {
    match mode {
        WireMode::Json => {
            let line = if overloaded {
                protocol::overload_response(id, message)
            } else if throttled {
                protocol::throttle_response(id, message)
            } else {
                protocol::error_response(id, message)
            };
            line.into_bytes()
        }
        WireMode::Binary => wire::error_frame(id, message, throttled, overloaded),
    }
}

/// Renders an info response in the connection's wire format.
fn render_info(mode: WireMode, id: u64, info: &protocol::ServerInfo) -> Vec<u8> {
    match mode {
        WireMode::Json => protocol::info_response(id, info).into_bytes(),
        WireMode::Binary => wire::info_response_frame(id, info),
    }
}

/// Renders a batch-worker completion in the connection's wire format.
fn render_completion(mode: WireMode, done: &Completion) -> Vec<u8> {
    match (&done.result, mode) {
        (JobResult::Class(class), WireMode::Json) => {
            protocol::ok_response(done.id, *class, None).into_bytes()
        }
        (JobResult::Class(class), WireMode::Binary) => wire::class_frame(done.id, *class),
        (JobResult::ClassWithScores(class, scores), WireMode::Json) => {
            protocol::ok_response(done.id, *class, Some(scores)).into_bytes()
        }
        (JobResult::ClassWithScores(class, scores), WireMode::Binary) => {
            wire::scores_frame(done.id, *class, scores)
        }
        (JobResult::Matches(matches), WireMode::Json) => {
            protocol::matches_response(done.id, matches).into_bytes()
        }
        (JobResult::Matches(matches), WireMode::Binary) => wire::matches_frame(done.id, matches),
        (JobResult::Rejected(msg), _) => render_error(mode, done.id, msg, false, false),
    }
}

// ---------------------------------------------------------------------
// The multiplexed connection
// ---------------------------------------------------------------------

/// One parsed request, wire-format agnostic.
enum Incoming {
    Classify {
        id: u64,
        levels: Vec<u16>,
        want_scores: bool,
        /// `Some(k)` routes the row to top-k search instead of
        /// classification (same validation, window and admission path).
        search_k: Option<usize>,
    },
    Info {
        id: u64,
    },
    Admin {
        id: u64,
        admin: protocol::AdminRequest,
    },
    /// A malformed request answered with an error; `fatal` closes the
    /// connection after the error is delivered (stream desync).
    Bad {
        id: u64,
        message: String,
        fatal: bool,
    },
}

/// Responses (beyond the classify window itself) the writer may have
/// pending before the read side stops pulling bytes off the socket.
/// Inline responses — errors, info, overload notices — are not metered
/// by the pipeline window, so without this cap a client that floods
/// requests and never reads responses would grow the writer's queue
/// without bound; at the cap, the reader pauses and ordinary TCP
/// back-pressure reaches the client.
const WRITER_BACKLOG_SLACK: usize = 256;

/// Shared per-connection I/O state handed to the dispatcher.
struct ConnIo<'a> {
    mode: WireMode,
    queue: &'a BatchQueue,
    tx: &'a mpsc::Sender<Delivery>,
    /// Ids of classify requests currently queued or running. The read
    /// side inserts before enqueue; the writer removes as it renders
    /// the completion — its size is the pipeline depth.
    inflight: &'a Mutex<HashSet<u64>>,
    /// Deliveries handed to the writer but not yet written: the read
    /// side increments per send (inline response or enqueued job), the
    /// writer decrements per delivery processed.
    pending: &'a AtomicU64,
    window: usize,
    requests: &'a AtomicU64,
    throttled: &'a AtomicU64,
}

impl ConnIo<'_> {
    /// The writer-backlog ceiling: the full pipeline window plus slack
    /// for unmetered inline responses.
    fn backlog_cap(&self) -> u64 {
        (self.window + WRITER_BACKLOG_SLACK) as u64
    }

    fn send_raw(&self, bytes: Vec<u8>) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // The writer only exits once every sender is gone; a failed
        // send means the connection is already tearing down.
        let _ = self.tx.send(Delivery::Raw(bytes));
    }

    /// Handles one parsed request. Returns `false` when the connection
    /// must close (fatal framing fault).
    fn dispatch<B: RequestBrain>(&self, incoming: Incoming, brain: &mut B) -> bool {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match incoming {
            Incoming::Info { id } => {
                let info = brain.server_info();
                self.send_raw(render_info(self.mode, id, &info));
            }
            Incoming::Admin { id, admin } => {
                // Admin stays JSON-only; the binary decoder never
                // produces this variant.
                self.send_raw(brain.admin(id, &admin).into_bytes());
            }
            Incoming::Bad { id, message, fatal } => {
                self.send_raw(render_error(self.mode, id, &message, false, false));
                return !fatal;
            }
            Incoming::Classify {
                id,
                levels,
                want_scores,
                search_k,
            } => {
                if let Some(msg) = brain.validate_levels(&levels) {
                    self.send_raw(render_error(self.mode, id, &msg, false, false));
                    return true;
                }
                {
                    let mut inflight = self
                        .inflight
                        .lock()
                        .expect("in-flight set lock never poisoned");
                    if inflight.contains(&id) {
                        drop(inflight);
                        self.send_raw(render_error(
                            self.mode,
                            id,
                            &format!("request id {id} already in flight on this connection"),
                            false,
                            false,
                        ));
                        return true;
                    }
                    if inflight.len() >= self.window {
                        drop(inflight);
                        self.send_raw(render_error(
                            self.mode,
                            id,
                            &format!(
                                "pipeline window full ({} requests in flight); \
                                 drain responses before sending more",
                                self.window
                            ),
                            false,
                            true,
                        ));
                        return true;
                    }
                    inflight.insert(id);
                }
                // Admission runs last, after validation and windowing,
                // so malformed or back-pressured requests never consume
                // the connection's query budget.
                if let Err(msg) = brain.admit(&levels) {
                    self.inflight
                        .lock()
                        .expect("in-flight set lock never poisoned")
                        .remove(&id);
                    self.throttled.fetch_add(1, Ordering::Relaxed);
                    self.send_raw(render_error(self.mode, id, &msg, true, false));
                    return true;
                }
                self.pending.fetch_add(1, Ordering::SeqCst);
                self.queue.push(Job {
                    id,
                    levels,
                    want_scores,
                    search_k,
                    tx: self.tx.clone(),
                });
            }
        }
        true
    }

    /// Blocks while the writer's backlog is at the cap (a client
    /// sending without reading). Returns `false` when shutdown was
    /// raised while waiting.
    fn wait_for_backlog_room(&self, shutdown: &AtomicBool) -> bool {
        while self.pending.load(Ordering::SeqCst) >= self.backlog_cap() {
            if shutdown.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

/// The per-connection writer: receives deliveries (batch completions,
/// pre-rendered inline responses) and writes them in arrival order —
/// which for pipelined completions is *completion* order, not request
/// order; clients match on the echoed id. Exits when every sender
/// (reader + all queued jobs) is gone.
fn writer_loop(
    stream: TcpStream,
    rx: mpsc::Receiver<Delivery>,
    mode: WireMode,
    inflight: &Mutex<HashSet<u64>>,
    pending: &AtomicU64,
) {
    let mut writer = BufWriter::new(stream);
    let mut dead = false;
    while let Ok(first) = rx.recv() {
        let mut next = Some(first);
        // Greedily drain whatever has completed, then flush once: under
        // pipelined load this coalesces many small responses into one
        // syscall.
        while let Some(delivery) = next {
            let bytes = match delivery {
                Delivery::Raw(bytes) => bytes,
                Delivery::Done(done) => {
                    inflight
                        .lock()
                        .expect("in-flight set lock never poisoned")
                        .remove(&done.id);
                    render_completion(mode, &done)
                }
            };
            if !dead && writer.write_all(&bytes).is_err() {
                // Client hung up (or stalled past the write timeout)
                // mid-pipeline: keep draining so the in-flight and
                // backlog bookkeeping finishes, skip the writes — and
                // shut the socket down so the read side sees EOF and
                // closes the connection instead of silently accepting
                // requests that will never be answered.
                dead = true;
                let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
            }
            pending.fetch_sub(1, Ordering::SeqCst);
            next = rx.try_recv().ok();
        }
        if !dead && writer.flush().is_err() {
            dead = true;
            let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
        }
    }
}

/// One connection: sniff the wire format, then run the read loop on
/// this thread and the writer on a scoped sibling. Returns when the
/// client hangs up, a fatal framing fault closes the stream, or
/// shutdown is raised (after in-flight requests are answered).
fn handle_connection<B: RequestBrain>(
    stream: TcpStream,
    mut brain: B,
    queue: &BatchQueue,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    throttled: &AtomicU64,
    window: usize,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;

    // Negotiate the wire format without consuming anything: the first
    // byte of a binary connection is the magic 0xB1, which no JSON line
    // starts with.
    let mode = loop {
        let mut first = [0u8; 1];
        match stream.peek(&mut first) {
            Ok(0) => return Ok(()), // connected, sent nothing, left
            Ok(_) => {
                break if first[0] == wire::MAGIC0 {
                    WireMode::Binary
                } else {
                    WireMode::Json
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    };

    let write_stream = stream.try_clone()?;
    // A generous write timeout keeps a stalled (never-reading) client
    // from pinning the writer — and with it, graceful shutdown —
    // forever once the kernel send buffer fills.
    write_stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let (tx, rx) = mpsc::channel::<Delivery>();
    let inflight = Mutex::new(HashSet::new());
    let pending = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let writer = scope.spawn({
            let inflight = &inflight;
            let pending = &pending;
            move || writer_loop(write_stream, rx, mode, inflight, pending)
        });
        let io = ConnIo {
            mode,
            queue,
            tx: &tx,
            inflight: &inflight,
            pending: &pending,
            window: window.max(1),
            requests,
            throttled,
        };
        let result = match mode {
            WireMode::Json => read_json_loop(&stream, &io, &mut brain, shutdown),
            WireMode::Binary => read_binary_loop(&stream, &io, &mut brain, shutdown),
        };
        // Dropping the reader's sender lets the writer exit once the
        // last in-flight job has delivered its completion.
        drop(tx);
        let _ = writer.join();
        result
    })
}

/// Read loop, line-JSON flavor.
fn read_json_loop<B: RequestBrain>(
    stream: &TcpStream,
    io: &ConnIo<'_>,
    brain: &mut B,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // Stop pulling bytes while the writer backlog is at its cap
        // (client sends but does not read) — TCP back-pressure takes
        // over from here.
        if !io.wait_for_backlog_room(shutdown) {
            break;
        }
        // `line` is NOT cleared at the top: a read timeout may leave a
        // partially received request in it, and the next tick must
        // append the rest instead of dropping the fragment.
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up (any partial line is theirs)
            Ok(_) => {
                if !line.trim().is_empty() {
                    let incoming = match protocol::parse_request(&line) {
                        Ok(request) => {
                            if request.want_info {
                                Incoming::Info { id: request.id }
                            } else if let Some(admin) = request.admin {
                                Incoming::Admin {
                                    id: request.id,
                                    admin,
                                }
                            } else {
                                Incoming::Classify {
                                    id: request.id,
                                    levels: request.levels,
                                    want_scores: request.want_scores,
                                    search_k: request.search_k,
                                }
                            }
                        }
                        Err((id, message)) => Incoming::Bad {
                            id,
                            message,
                            fatal: false,
                        },
                    };
                    if !io.dispatch(incoming, brain) {
                        break;
                    }
                }
                line.clear();
                // A client that never pauses must not be able to pin
                // this reader past shutdown: in-flight requests are
                // answered by the writer, then the connection closes.
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// Read loop, binary-frame flavor: accumulate bytes, peel off complete
/// frames, dispatch each. Framed-but-malformed requests (unknown
/// opcode, newer version, bad payload) answer a structured error and
/// keep the connection — and its sibling in-flight requests — alive;
/// only an untrustworthy stream (bad magic, oversized length prefix)
/// closes it.
fn read_binary_loop<B: RequestBrain>(
    mut stream: &TcpStream,
    io: &ConnIo<'_>,
    brain: &mut B,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let mut frames = wire::FrameBuffer::new();
    let mut chunk = vec![0u8; 64 * 1024];
    'conn: loop {
        // Same writer-backlog pause as the JSON loop (frames already
        // buffered still dispatch — bounded by one read chunk).
        if !io.wait_for_backlog_room(shutdown) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // client hung up (any partial frame is theirs)
            Ok(n) => {
                frames.extend(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some((header, payload))) => {
                            let incoming = match wire::decode_request(&header, &payload) {
                                Ok(wire::ServerFrame::Classify {
                                    id,
                                    levels,
                                    want_scores,
                                }) => Incoming::Classify {
                                    id,
                                    levels,
                                    want_scores,
                                    search_k: None,
                                },
                                Ok(wire::ServerFrame::Search { id, levels, k }) => {
                                    Incoming::Classify {
                                        id,
                                        levels,
                                        want_scores: false,
                                        search_k: Some(k),
                                    }
                                }
                                Ok(wire::ServerFrame::Info { id }) => Incoming::Info { id },
                                Err((id, message)) => Incoming::Bad {
                                    id,
                                    message,
                                    fatal: false,
                                },
                            };
                            if !io.dispatch(incoming, brain) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break, // need more bytes
                        Err(wire::FatalFrameError::BadMagic(_)) => {
                            // Desynchronized or not our protocol: no
                            // trustworthy id to answer — close cleanly.
                            break 'conn;
                        }
                        Err(wire::FatalFrameError::Oversized { id, len }) => {
                            // The id sits before the length prefix, so
                            // it is still trustworthy: answer, then
                            // close (the payload cannot be skipped).
                            let fatal = Incoming::Bad {
                                id,
                                message: format!(
                                    "frame payload of {len} bytes exceeds the {} byte cap",
                                    wire::MAX_PAYLOAD
                                ),
                                fatal: true,
                            };
                            let _ = io.dispatch(fatal, brain);
                            break 'conn;
                        }
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The two server flavors
// ---------------------------------------------------------------------

/// Serves classify traffic for one fixed session on `listener` until
/// `shutdown` is raised.
///
/// Every connection speaks either the line-JSON protocol ([`protocol`])
/// or the binary frame protocol ([`wire`]), negotiated by first-byte
/// sniffing; requests from all connections funnel into one
/// [`BatchQueue`] and are answered by `config.workers` fused batch
/// calls, pipelined up to `config.pipeline_window` deep per connection.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve<S: ClassifySession>(
    listener: TcpListener,
    session: &S,
    config: &BatchConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let queue = BatchQueue::new();
    let requests = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let throttled = AtomicU64::new(0);
    let mut connections = 0u64;

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.workers.max(1))
            .map(|_| scope.spawn(|| worker_loop(&queue, session, config, &served)))
            .collect();

        let mut handler_handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            // Reap handlers whose connections already closed, so a
            // long-running server does not accumulate one JoinHandle
            // per connection it ever accepted.
            handler_handles.retain(|h: &std::thread::ScopedJoinHandle<'_, ()>| !h.is_finished());
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let queue = &queue;
                    let requests = &requests;
                    let throttled = &throttled;
                    handler_handles.push(scope.spawn(move || {
                        let _ = handle_connection(
                            stream,
                            SessionBrain { session },
                            queue,
                            shutdown,
                            requests,
                            throttled,
                            config.pipeline_window,
                        );
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => break,
            }
        }

        // Graceful shutdown: stop accepting, let handlers drain their
        // in-flight requests (readers exit within a read-timeout tick,
        // writers once the last completion lands — the workers are
        // still popping batches at this point), then close the queue so
        // workers finish the backlog and exit.
        for h in handler_handles {
            let _ = h.join();
        }
        queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServeStats {
        requests: requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: throttled.load(Ordering::Relaxed),
    })
}

// ---------------------------------------------------------------------
// Registry-backed serving
// ---------------------------------------------------------------------

/// Shared context of the registry server's connection handlers.
struct RegistryCtx<'a> {
    registry: &'a ModelRegistry,
    admission: &'a AdmissionConfig,
    requests: &'a AtomicU64,
    throttled: &'a AtomicU64,
}

/// Serves classify traffic from a [`ModelRegistry`] on `listener` until
/// `shutdown` is raised, honoring admin requests and enforcing
/// per-connection admission control. Connections are multiplexed
/// exactly like [`serve`]'s: JSON or binary by first-byte sniffing,
/// pipelined up to `config.batch.pipeline_window` in-flight requests,
/// admission metering every classify request identically in both
/// formats.
///
/// Hot swaps are wait-free for traffic: a reload/rekey builds the new
/// generation entirely off the serving path, batches in flight finish
/// on the generation they grabbed, and the next batch picks up the new
/// one.
///
/// # Trust boundary
///
/// Admin requests (`reload` / `rekey` / `stats`) are an **operator
/// plane** carried on the same port for protocol simplicity — they are
/// not authenticated and are deliberately exempt from admission
/// budgets. In particular, `rekey` is seed-deterministic by design (so
/// rotation is reproducible and auditable), which means whoever can
/// send it can also derive the new key from the public pool. Do not
/// expose this listener to untrusted clients: bind it to loopback /
/// an internal network and front it with an authenticating proxy, as
/// you would any database admin port.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_registry(
    listener: TcpListener,
    registry: &ModelRegistry,
    config: &RegistryServeConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let queue = BatchQueue::new();
    let requests = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let throttled = AtomicU64::new(0);
    let mut connections = 0u64;
    let ctx = RegistryCtx {
        registry,
        admission: &config.admission,
        requests: &requests,
        throttled: &throttled,
    };

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.batch.workers.max(1))
            .map(|_| scope.spawn(|| registry_worker_loop(&queue, registry, &config.batch, &served)))
            .collect();

        let mut handler_handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            // Same handle reaping as `serve`: the registry server is
            // the long-running default, so this matters even more here.
            handler_handles.retain(|h: &std::thread::ScopedJoinHandle<'_, ()>| !h.is_finished());
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let ctx = &ctx;
                    let queue = &queue;
                    handler_handles.push(scope.spawn(move || {
                        let brain = RegistryBrain {
                            ctx,
                            admission: ConnectionAdmission::new(ctx.admission),
                        };
                        let _ = handle_connection(
                            stream,
                            brain,
                            queue,
                            shutdown,
                            ctx.requests,
                            ctx.throttled,
                            config.batch.pipeline_window,
                        );
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => break,
            }
        }

        for h in handler_handles {
            let _ = h.join();
        }
        queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServeStats {
        requests: requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: throttled.load(Ordering::Relaxed),
    })
}

/// Registry batch worker: every batch runs against the generation
/// current at pop time; rows that no longer fit that generation (a
/// shape-changing swap raced them) are answered with per-request
/// errors, never dropped.
fn registry_worker_loop(
    queue: &BatchQueue,
    registry: &ModelRegistry,
    config: &BatchConfig,
    served: &AtomicU64,
) {
    while let Some(batch) = queue.next_batch(config) {
        let generation = registry.current();
        let session = generation.session();
        let (search, batch): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.search_k.is_some());
        // Search jobs re-validate against the popped generation inside
        // `run_search_jobs` — same mid-flight-swap guarantee as below.
        crate::batcher::run_search_jobs(session, config, search, served);
        if batch.is_empty() {
            continue;
        }
        let mut results: Vec<Option<JobResult>> = Vec::with_capacity(batch.len());
        let mut valid = Vec::new();
        let mut rows: Vec<&[u16]> = Vec::new();
        for (i, job) in batch.iter().enumerate() {
            let fits = job.levels.len() == session.n_features()
                && job
                    .levels
                    .iter()
                    .all(|&lv| usize::from(lv) < session.m_levels());
            if fits {
                results.push(None);
                valid.push(i);
                rows.push(job.levels.as_slice());
            } else {
                results.push(Some(JobResult::Rejected(format!(
                    "model swapped mid-flight: row no longer fits generation {} \
                     (N = {}, M = {})",
                    generation.id(),
                    session.n_features(),
                    session.m_levels()
                ))));
            }
        }
        if batch.iter().any(|j| j.want_scores) {
            let hits = session.scores_batch(&rows);
            for (slot, &i) in valid.iter().enumerate() {
                results[i] = Some(if batch[i].want_scores {
                    JobResult::ClassWithScores(hits.best(slot), hits.scores(slot).to_vec())
                } else {
                    JobResult::Class(hits.best(slot))
                });
            }
        } else {
            let classes = session.classify_batch(&rows);
            for (slot, &i) in valid.iter().enumerate() {
                results[i] = Some(JobResult::Class(classes[slot]));
            }
        }
        for (job, result) in batch.into_iter().zip(results) {
            let result = result.expect("every job got a result");
            // `classified` counts answered classifications only —
            // swap-rejected jobs are protocol rejections, not results.
            if !matches!(result, JobResult::Rejected(_)) {
                served.fetch_add(1, Ordering::Relaxed);
            }
            // A handler that hung up already is not an error.
            let _ = job.tx.send(job.complete(result));
        }
    }
}

/// Executes one admin operation synchronously on the handler thread
/// (swaps are rare; blocking this one connection while the new
/// generation builds is the intended behavior — classify traffic on
/// other connections keeps flowing on the old generation).
fn answer_admin(id: u64, admin: &protocol::AdminRequest, ctx: &RegistryCtx<'_>) -> String {
    match admin {
        protocol::AdminRequest::Stats => {
            let s = ctx.registry.stats();
            protocol::stats_response(
                id,
                &protocol::StatsReport {
                    generation: s.generation,
                    checksum: protocol::checksum_hex(s.checksum),
                    locked: s.locked,
                    reloads: s.reloads,
                    rekeys: s.rekeys,
                    rollbacks: s.rollbacks,
                    requests: ctx.requests.load(Ordering::Relaxed),
                    throttled: ctx.throttled.load(Ordering::Relaxed),
                },
            )
        }
        protocol::AdminRequest::Reload { snapshot, key } => {
            let result = ctx.registry.reload_files(
                std::path::Path::new(snapshot),
                key.as_deref().map(std::path::Path::new),
            );
            match result {
                Ok(generation) => protocol::swap_response(
                    id,
                    &protocol::SwapInfo {
                        generation: generation.id(),
                        checksum: protocol::checksum_hex(generation.checksum()),
                    },
                ),
                Err(e) => protocol::error_response(id, &format!("reload failed: {e}")),
            }
        }
        protocol::AdminRequest::Rekey { seed } => match ctx.registry.rekey(*seed) {
            Ok(generation) => protocol::swap_response(
                id,
                &protocol::SwapInfo {
                    generation: generation.id(),
                    checksum: protocol::checksum_hex(generation.checksum()),
                },
            ),
            Err(e) => protocol::error_response(id, &format!("rekey failed: {e}")),
        },
    }
}
