//! The TCP front end: accept loop, per-connection handlers, graceful
//! shutdown — in two flavors.
//!
//! [`serve`] drives one fixed session (generic over
//! [`ClassifySession`], so borrowed and owned sessions both work).
//! [`serve_registry`] drives a [`ModelRegistry`]: every batch grabs the
//! current generation with one refcount bump, admin requests
//! (`reload` / `rekey` / `stats`) swap generations *behind* the running
//! server, and a per-connection [`ConnectionAdmission`] enforces query
//! budgets, rate limits and feature-sweep detection with structured
//! throttle errors.
//!
//! Both block the calling thread until `shutdown` is raised: connection
//! handlers and batch workers run on `std::thread::scope` threads, so
//! the server needs no `'static` state and no external runtime.
//! Shutdown is graceful — the accept loop stops, handlers notice within
//! their read-timeout tick and hang up, the queue drains, workers exit.
//!
//! During a swap, in-flight requests finish on the generation their
//! batch grabbed; requests that raced a *shape-changing* reload are
//! answered with a per-request error instead of being dropped (the
//! worker re-validates every row against the generation it actually
//! runs).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use hdc_model::ClassifySession;
use hdc_store::ModelRegistry;

use crate::admission::{AdmissionConfig, ConnectionAdmission};
use crate::batcher::{worker_loop, BatchConfig, BatchQueue, Job, JobResult};
use crate::protocol;

/// How often blocked I/O re-checks the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Counters reported when the server exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (success or protocol error).
    pub requests: u64,
    /// Requests that reached the batch workers and were classified —
    /// `requests − classified` is the protocol-rejection count.
    pub classified: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests rejected by admission control (always 0 for the
    /// non-registry [`serve`]).
    pub throttled: u64,
}

/// Configuration of the registry-backed server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegistryServeConfig {
    /// Batching queue and worker-pool parameters.
    pub batch: BatchConfig,
    /// Per-connection admission thresholds.
    pub admission: AdmissionConfig,
}

/// Serves classify traffic for one fixed session on `listener` until
/// `shutdown` is raised.
///
/// Every connection speaks the line-JSON protocol ([`protocol`]);
/// requests from all connections funnel into one [`BatchQueue`] and are
/// answered by `config.workers` fused batch calls.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve<S: ClassifySession>(
    listener: TcpListener,
    session: &S,
    config: &BatchConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let queue = BatchQueue::new();
    let requests = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let mut connections = 0u64;

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.workers.max(1))
            .map(|_| scope.spawn(|| worker_loop(&queue, session, config, &served)))
            .collect();

        let mut handler_handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            // Reap handlers whose connections already closed, so a
            // long-running server does not accumulate one JoinHandle
            // per connection it ever accepted.
            handler_handles.retain(|h: &std::thread::ScopedJoinHandle<'_, ()>| !h.is_finished());
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let queue = &queue;
                    let requests = &requests;
                    handler_handles.push(scope.spawn(move || {
                        let _ = handle_connection(stream, session, queue, shutdown, requests);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => break,
            }
        }

        // Graceful shutdown: stop accepting, let handlers drain their
        // in-flight requests (they exit within a read-timeout tick),
        // then close the queue so workers finish the backlog and exit.
        for h in handler_handles {
            let _ = h.join();
        }
        queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServeStats {
        requests: requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: 0,
    })
}

/// One connection: read request lines, enqueue, await the batched
/// result, write the response line.
fn handle_connection<S: ClassifySession>(
    stream: TcpStream,
    session: &S,
    queue: &BatchQueue,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let (tx, rx) = mpsc::channel();
    let mut line = String::new();
    loop {
        // `line` is NOT cleared at the top: a read timeout may leave a
        // partially received request in it, and the next tick must
        // append the rest instead of dropping the fragment.
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up (any partial line is theirs)
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = answer(&line, session, queue, &tx, &rx);
                    requests.fetch_add(1, Ordering::Relaxed);
                    writer.write_all(response.as_bytes())?;
                    writer.flush()?;
                }
                line.clear();
                // A client that never pauses must not be able to pin
                // this handler past shutdown: in-flight request is
                // answered, then the connection closes.
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// Validates one request line, runs it through the batching queue, and
/// renders the response line.
fn answer<S: ClassifySession>(
    line: &str,
    session: &S,
    queue: &BatchQueue,
    tx: &mpsc::Sender<JobResult>,
    rx: &mpsc::Receiver<JobResult>,
) -> String {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => return protocol::error_response(id, &msg),
    };
    if request.want_info {
        return protocol::info_response(
            request.id,
            &protocol::ServerInfo {
                backend: session.kernel_backend().to_owned(),
                dim: session.dim(),
                features: session.n_features(),
                levels: session.m_levels(),
                classes: session.n_classes(),
                generation: 0,
                checksum: protocol::checksum_hex(0),
            },
        );
    }
    if request.admin.is_some() {
        return protocol::error_response(
            request.id,
            "admin requests need a registry-backed server",
        );
    }
    if let Some(response) = validate(&request, session) {
        return response;
    }
    queue.push(Job {
        levels: request.levels,
        want_scores: request.want_scores,
        tx: tx.clone(),
    });
    render_result(request.id, rx)
}

/// Shape/range validation of a classify row against a session; `Some`
/// is the error response to send.
fn validate<S: ClassifySession>(
    request: &protocol::ClassifyRequest,
    session: &S,
) -> Option<String> {
    if request.levels.len() != session.n_features() {
        return Some(protocol::error_response(
            request.id,
            &format!(
                "row has {} levels, model expects {}",
                request.levels.len(),
                session.n_features()
            ),
        ));
    }
    if let Some(bad) = request
        .levels
        .iter()
        .position(|&lv| usize::from(lv) >= session.m_levels())
    {
        return Some(protocol::error_response(
            request.id,
            &format!(
                "level {} at feature {bad} out of range (M = {})",
                request.levels[bad],
                session.m_levels()
            ),
        ));
    }
    None
}

/// Awaits a job's batched result and renders the response line.
fn render_result(id: u64, rx: &mpsc::Receiver<JobResult>) -> String {
    match rx.recv() {
        Ok(JobResult::Class(class)) => protocol::ok_response(id, class, None),
        Ok(JobResult::ClassWithScores(class, scores)) => {
            protocol::ok_response(id, class, Some(&scores))
        }
        Ok(JobResult::Rejected(msg)) => protocol::error_response(id, &msg),
        Err(_) => protocol::error_response(id, "server shutting down"),
    }
}

// ---------------------------------------------------------------------
// Registry-backed serving
// ---------------------------------------------------------------------

/// Shared context of the registry server's connection handlers.
struct RegistryCtx<'a> {
    registry: &'a ModelRegistry,
    queue: &'a BatchQueue,
    admission: &'a AdmissionConfig,
    requests: &'a AtomicU64,
    throttled: &'a AtomicU64,
}

/// Serves classify traffic from a [`ModelRegistry`] on `listener` until
/// `shutdown` is raised, honoring admin requests and enforcing
/// per-connection admission control.
///
/// Hot swaps are wait-free for traffic: a reload/rekey builds the new
/// generation entirely off the serving path, batches in flight finish
/// on the generation they grabbed, and the next batch picks up the new
/// one.
///
/// # Trust boundary
///
/// Admin requests (`reload` / `rekey` / `stats`) are an **operator
/// plane** carried on the same port for protocol simplicity — they are
/// not authenticated and are deliberately exempt from admission
/// budgets. In particular, `rekey` is seed-deterministic by design (so
/// rotation is reproducible and auditable), which means whoever can
/// send it can also derive the new key from the public pool. Do not
/// expose this listener to untrusted clients: bind it to loopback /
/// an internal network and front it with an authenticating proxy, as
/// you would any database admin port.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_registry(
    listener: TcpListener,
    registry: &ModelRegistry,
    config: &RegistryServeConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let queue = BatchQueue::new();
    let requests = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let throttled = AtomicU64::new(0);
    let mut connections = 0u64;
    let ctx = RegistryCtx {
        registry,
        queue: &queue,
        admission: &config.admission,
        requests: &requests,
        throttled: &throttled,
    };

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.batch.workers.max(1))
            .map(|_| scope.spawn(|| registry_worker_loop(&queue, registry, &config.batch, &served)))
            .collect();

        let mut handler_handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            // Same handle reaping as `serve`: the registry server is
            // the long-running default, so this matters even more here.
            handler_handles.retain(|h: &std::thread::ScopedJoinHandle<'_, ()>| !h.is_finished());
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let ctx = &ctx;
                    handler_handles.push(scope.spawn(move || {
                        let _ = handle_registry_connection(stream, ctx, shutdown);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => break,
            }
        }

        for h in handler_handles {
            let _ = h.join();
        }
        queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServeStats {
        requests: requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: throttled.load(Ordering::Relaxed),
    })
}

/// Registry batch worker: every batch runs against the generation
/// current at pop time; rows that no longer fit that generation (a
/// shape-changing swap raced them) are answered with per-request
/// errors, never dropped.
fn registry_worker_loop(
    queue: &BatchQueue,
    registry: &ModelRegistry,
    config: &BatchConfig,
    served: &AtomicU64,
) {
    while let Some(batch) = queue.next_batch(config) {
        let generation = registry.current();
        let session = generation.session();
        let mut results: Vec<Option<JobResult>> = Vec::with_capacity(batch.len());
        let mut valid = Vec::new();
        let mut rows: Vec<&[u16]> = Vec::new();
        for (i, job) in batch.iter().enumerate() {
            let fits = job.levels.len() == session.n_features()
                && job
                    .levels
                    .iter()
                    .all(|&lv| usize::from(lv) < session.m_levels());
            if fits {
                results.push(None);
                valid.push(i);
                rows.push(job.levels.as_slice());
            } else {
                results.push(Some(JobResult::Rejected(format!(
                    "model swapped mid-flight: row no longer fits generation {} \
                     (N = {}, M = {})",
                    generation.id(),
                    session.n_features(),
                    session.m_levels()
                ))));
            }
        }
        if batch.iter().any(|j| j.want_scores) {
            let hits = session.scores_batch(&rows);
            for (slot, &i) in valid.iter().enumerate() {
                results[i] = Some(if batch[i].want_scores {
                    JobResult::ClassWithScores(hits.best(slot), hits.scores(slot).to_vec())
                } else {
                    JobResult::Class(hits.best(slot))
                });
            }
        } else {
            let classes = session.classify_batch(&rows);
            for (slot, &i) in valid.iter().enumerate() {
                results[i] = Some(JobResult::Class(classes[slot]));
            }
        }
        for (job, result) in batch.into_iter().zip(results) {
            let result = result.expect("every job got a result");
            // `classified` counts answered classifications only —
            // swap-rejected jobs are protocol rejections, not results.
            if !matches!(result, JobResult::Rejected(_)) {
                served.fetch_add(1, Ordering::Relaxed);
            }
            // A handler that hung up already is not an error.
            let _ = job.tx.send(result);
        }
    }
}

/// One registry-server connection, with its own admission state.
fn handle_registry_connection(
    stream: TcpStream,
    ctx: &RegistryCtx<'_>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let (tx, rx) = mpsc::channel();
    let mut admission = ConnectionAdmission::new(ctx.admission);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = answer_registry(&line, ctx, &mut admission, &tx, &rx);
                    ctx.requests.fetch_add(1, Ordering::Relaxed);
                    writer.write_all(response.as_bytes())?;
                    writer.flush()?;
                }
                line.clear();
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// Answers one registry-server request: info/stats/admin inline,
/// classify through admission + the batch queue.
fn answer_registry(
    line: &str,
    ctx: &RegistryCtx<'_>,
    admission: &mut ConnectionAdmission,
    tx: &mpsc::Sender<JobResult>,
    rx: &mpsc::Receiver<JobResult>,
) -> String {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => return protocol::error_response(id, &msg),
    };
    if request.want_info {
        let generation = ctx.registry.current();
        let session = generation.session();
        return protocol::info_response(
            request.id,
            &protocol::ServerInfo {
                backend: session.kernel_backend().to_owned(),
                dim: session.dim(),
                features: session.n_features(),
                levels: session.m_levels(),
                classes: session.n_classes(),
                generation: generation.id(),
                checksum: protocol::checksum_hex(generation.checksum()),
            },
        );
    }
    if let Some(admin) = &request.admin {
        return answer_admin(request.id, admin, ctx);
    }
    {
        let generation = ctx.registry.current();
        if let Some(response) = validate(&request, generation.session()) {
            return response;
        }
    }
    if let Err(reason) = admission.admit(&request.levels) {
        ctx.throttled.fetch_add(1, Ordering::Relaxed);
        return protocol::throttle_response(request.id, &reason.to_string());
    }
    ctx.queue.push(Job {
        levels: request.levels,
        want_scores: request.want_scores,
        tx: tx.clone(),
    });
    render_result(request.id, rx)
}

/// Executes one admin operation synchronously on the handler thread
/// (swaps are rare; blocking this one connection while the new
/// generation builds is the intended behavior — classify traffic on
/// other connections keeps flowing on the old generation).
fn answer_admin(id: u64, admin: &protocol::AdminRequest, ctx: &RegistryCtx<'_>) -> String {
    match admin {
        protocol::AdminRequest::Stats => {
            let s = ctx.registry.stats();
            protocol::stats_response(
                id,
                &protocol::StatsReport {
                    generation: s.generation,
                    checksum: protocol::checksum_hex(s.checksum),
                    locked: s.locked,
                    reloads: s.reloads,
                    rekeys: s.rekeys,
                    rollbacks: s.rollbacks,
                    requests: ctx.requests.load(Ordering::Relaxed),
                    throttled: ctx.throttled.load(Ordering::Relaxed),
                },
            )
        }
        protocol::AdminRequest::Reload { snapshot, key } => {
            let result = ctx.registry.reload_files(
                std::path::Path::new(snapshot),
                key.as_deref().map(std::path::Path::new),
            );
            match result {
                Ok(generation) => protocol::swap_response(
                    id,
                    &protocol::SwapInfo {
                        generation: generation.id(),
                        checksum: protocol::checksum_hex(generation.checksum()),
                    },
                ),
                Err(e) => protocol::error_response(id, &format!("reload failed: {e}")),
            }
        }
        protocol::AdminRequest::Rekey { seed } => match ctx.registry.rekey(*seed) {
            Ok(generation) => protocol::swap_response(
                id,
                &protocol::SwapInfo {
                    generation: generation.id(),
                    checksum: protocol::checksum_hex(generation.checksum()),
                },
            ),
            Err(e) => protocol::error_response(id, &format!("rekey failed: {e}")),
        },
    }
}
