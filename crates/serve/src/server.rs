//! Per-request serving policy and the server front door.
//!
//! This module holds everything about answering a request that does
//! *not* depend on how sockets are driven: validation, admission,
//! pipeline windowing, admin handling, bulk-frame preparation and
//! response rendering. Two interchangeable connection cores consume it:
//!
//! * [`crate::event_loop`] (Linux, the default) — one nonblocking
//!   epoll-driven thread multiplexes every connection; scales to tens
//!   of thousands of concurrent sockets.
//! * [`crate::threaded`] — one reader + one writer thread per
//!   connection; portable, and the differential baseline the event
//!   core is pinned against.
//!
//! The seam between policy and core is two small traits:
//! `RequestBrain` (what the server flavor — fixed session vs.
//! registry — decides per request) and `ConnOutbox` (what the core
//! provides per connection: a write path, the in-flight set, the job
//! queue). `dispatch_incoming` composes them, so both cores answer
//! every request byte-for-byte identically.
//!
//! [`serve`] and [`serve_registry`] pick the platform default core;
//! [`serve_with_core`] / [`serve_registry_with_core`] pin one
//! explicitly (tests pin both and diff the bytes).

use std::collections::HashSet;
use std::net::TcpListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hdc_model::ClassifySession;
use hdc_store::{ModelRegistry, SnapshotStage};

use crate::admission::{AdmissionConfig, ConnectionAdmission};
use crate::batcher::{
    run_batch, BatchConfig, BatchQueue, BulkSlot, Completion, JobKind, JobResult,
};
use crate::metrics::{elapsed_us, ServeMetrics, SwapKind};
use crate::protocol;
use crate::wire::{self, WireMode};

/// How often blocked I/O re-checks the shutdown flag.
pub(crate) const POLL_TICK: Duration = Duration::from_millis(20);

/// Counters reported when the server exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (success or protocol error).
    pub requests: u64,
    /// Requests that reached the batch workers and were classified —
    /// `requests − classified` is the protocol-rejection count.
    pub classified: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests rejected by admission control (always 0 for the
    /// non-registry [`serve`]).
    pub throttled: u64,
}

/// Always-on per-server counters shared by both connection cores, plus
/// the optional telemetry plane. The atomics cost one relaxed add per
/// event whether telemetry is on or off — so the two configurations pay
/// the same base price and stay byte-identical on the wire; everything
/// richer (clocks, histograms, labeled series) hides behind `metrics`.
pub(crate) struct CoreStats<'m> {
    /// Requests answered (success or protocol error).
    pub(crate) requests: AtomicU64,
    /// Requests rejected by admission control.
    pub(crate) throttled: AtomicU64,
    /// Requests arriving on JSON connections.
    pub(crate) requests_json: AtomicU64,
    /// Requests arriving on binary connections.
    pub(crate) requests_binary: AtomicU64,
    /// Currently open connections.
    pub(crate) active: AtomicU64,
    /// When this server started (drives the stats uptime field).
    pub(crate) started: Instant,
    /// The opt-in telemetry plane; `None` keeps every recording site
    /// clock-free.
    pub(crate) metrics: Option<&'m ServeMetrics>,
}

impl<'m> CoreStats<'m> {
    pub(crate) fn new(metrics: Option<&'m ServeMetrics>) -> Self {
        CoreStats {
            requests: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            requests_json: AtomicU64::new(0),
            requests_binary: AtomicU64::new(0),
            active: AtomicU64::new(0),
            started: Instant::now(),
            metrics,
        }
    }

    /// One connection entered service.
    pub(crate) fn enter_connection(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics {
            m.conns_opened.inc();
            m.active_connections.add(1);
        }
    }

    /// One connection left service.
    pub(crate) fn leave_connection(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
        if let Some(m) = self.metrics {
            m.conns_closed.inc();
            m.active_connections.sub(1);
        }
    }
}

/// Configuration of the registry-backed server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegistryServeConfig {
    /// Batching queue, worker-pool and pipeline-window parameters.
    pub batch: BatchConfig,
    /// Per-connection admission thresholds.
    pub admission: AdmissionConfig,
}

/// Which connection core drives the sockets. Both cores answer every
/// request with identical bytes; they differ in how far they scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Nonblocking epoll event loop: one thread multiplexes all
    /// connections (Linux; falls back to [`CoreKind::Threaded`]
    /// elsewhere).
    Event,
    /// Two threads (reader + writer) per connection.
    Threaded,
}

impl Default for CoreKind {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            CoreKind::Event
        } else {
            CoreKind::Threaded
        }
    }
}

// ---------------------------------------------------------------------
// Per-request policy (shared by both server flavors and both cores)
// ---------------------------------------------------------------------

/// How an admin request is executed.
///
/// Cheap admin operations (stats, transfer chunks) answer inline on the
/// dispatching thread. Slow ones (reload, rekey, transfer commit —
/// anything that builds a model generation) are handed back as a
/// closure so the event-loop core can run them off-loop; the threaded
/// core just runs the closure on the connection's reader thread, which
/// is the pre-event-loop behavior.
pub(crate) enum AdminOutcome<'env> {
    /// The rendered JSON response line, produced inline.
    Done(String),
    /// Deferred work; returns the rendered JSON response line.
    Offload(Box<dyn FnOnce() -> String + Send + 'env>),
}

/// What a connection needs from its server flavor to answer requests:
/// the model shape, per-row validation, admission and admin handling.
/// The connection machinery (sniffing, framing, pipelining, writes) is
/// the core's business and identical for both flavors.
pub(crate) trait RequestBrain<'env> {
    /// Shape/runtime facts for an `info` response.
    fn server_info(&mut self) -> protocol::ServerInfo;
    /// Row validation against the currently served model; `Some` is the
    /// rejection message.
    fn validate_levels(&mut self, levels: &[u16]) -> Option<String>;
    /// Admission check; `Err` is the throttle message.
    fn admit(&mut self, levels: &[u16]) -> Result<(), String>;
    /// Executes one admin operation (admin is deliberately JSON-only;
    /// binary connections cannot express it).
    fn admin(&mut self, id: u64, admin: protocol::AdminRequest) -> AdminOutcome<'env>;
}

/// Brain of the fixed-session server.
pub(crate) struct SessionBrain<'a, S: ClassifySession> {
    pub(crate) session: &'a S,
    /// Lets the fixed-session server answer `{"metrics":true}` when the
    /// telemetry plane is on (every other admin request still needs a
    /// registry).
    pub(crate) metrics: Option<&'a ServeMetrics>,
}

impl<'a, S: ClassifySession> RequestBrain<'a> for SessionBrain<'a, S> {
    fn server_info(&mut self) -> protocol::ServerInfo {
        protocol::ServerInfo {
            backend: self.session.kernel_backend().to_owned(),
            dim: self.session.dim(),
            features: self.session.n_features(),
            levels: self.session.m_levels(),
            classes: self.session.n_classes(),
            generation: 0,
            checksum: protocol::checksum_hex(0),
            hardened: self.session.hardened(),
        }
    }

    fn validate_levels(&mut self, levels: &[u16]) -> Option<String> {
        validate_against(levels, self.session)
    }

    fn admit(&mut self, _levels: &[u16]) -> Result<(), String> {
        Ok(())
    }

    fn admin(&mut self, id: u64, admin: protocol::AdminRequest) -> AdminOutcome<'a> {
        if let (protocol::AdminRequest::Metrics, Some(m)) = (&admin, self.metrics) {
            return AdminOutcome::Done(m.render_json(id, None));
        }
        AdminOutcome::Done(protocol::error_response(
            id,
            "admin requests need a registry-backed server",
        ))
    }
}

/// Shared context of the registry server's connection handlers.
pub(crate) struct RegistryCtx<'a> {
    pub(crate) registry: &'a ModelRegistry,
    pub(crate) admission: &'a AdmissionConfig,
    pub(crate) stats: &'a CoreStats<'a>,
}

/// Brain of the registry-backed server: one admission state (and at
/// most one in-progress snapshot transfer) per connection, every check
/// against the *current* generation.
pub(crate) struct RegistryBrain<'a, 'ctx> {
    ctx: &'ctx RegistryCtx<'a>,
    admission: ConnectionAdmission,
    /// The connection's in-progress streamed snapshot transfer, if any.
    stage: Option<SnapshotStage>,
}

impl<'a, 'ctx> RegistryBrain<'a, 'ctx> {
    pub(crate) fn new(ctx: &'ctx RegistryCtx<'a>) -> Self {
        RegistryBrain {
            ctx,
            admission: ConnectionAdmission::new(ctx.admission),
            stage: None,
        }
    }
}

/// Renders a generation swap (or its failure) as the response line.
fn render_swap(
    id: u64,
    verb: &str,
    result: Result<std::sync::Arc<hdc_store::Generation>, hdc_store::StoreError>,
) -> String {
    match result {
        Ok(generation) => protocol::swap_response(
            id,
            &protocol::SwapInfo {
                generation: generation.id(),
                checksum: protocol::checksum_hex(generation.checksum()),
            },
        ),
        Err(e) => protocol::error_response(id, &format!("{verb} failed: {e}")),
    }
}

/// [`render_swap`] plus telemetry: a swap that landed ticks its
/// per-kind counter and records the age of the generation it retired
/// (captured by the caller *before* the swap ran).
fn finish_swap(
    id: u64,
    verb: &str,
    kind: SwapKind,
    metrics: Option<&ServeMetrics>,
    retired_age: Duration,
    result: Result<std::sync::Arc<hdc_store::Generation>, hdc_store::StoreError>,
) -> String {
    if let (Some(m), Ok(generation)) = (metrics, result.as_ref()) {
        m.record_swap(kind, generation.id(), retired_age);
    }
    render_swap(id, verb, result)
}

impl<'a: 'ctx, 'ctx> RequestBrain<'ctx> for RegistryBrain<'a, 'ctx> {
    fn server_info(&mut self) -> protocol::ServerInfo {
        let generation = self.ctx.registry.current();
        let session = generation.session();
        protocol::ServerInfo {
            backend: session.kernel_backend().to_owned(),
            dim: session.dim(),
            features: session.n_features(),
            levels: session.m_levels(),
            classes: session.n_classes(),
            generation: generation.id(),
            checksum: protocol::checksum_hex(generation.checksum()),
            hardened: generation.is_hardened(),
        }
    }

    fn validate_levels(&mut self, levels: &[u16]) -> Option<String> {
        let generation = self.ctx.registry.current();
        validate_against(levels, generation.session())
    }

    fn admit(&mut self, levels: &[u16]) -> Result<(), String> {
        // The typed reason is recorded here, before stringification —
        // the only place budget/rate/sweep are still distinguishable.
        self.admission.admit(levels).map_err(|reason| {
            if let Some(m) = self.ctx.stats.metrics {
                m.record_throttle_reason(&reason);
            }
            reason.to_string()
        })
    }

    fn admin(&mut self, id: u64, admin: protocol::AdminRequest) -> AdminOutcome<'ctx> {
        // Copy the context reference out so offloaded closures capture
        // it by value (they must not borrow `self`).
        let ctx: &'ctx RegistryCtx<'a> = self.ctx;
        let metrics = ctx.stats.metrics;
        match admin {
            protocol::AdminRequest::Stats => {
                let s = ctx.registry.stats();
                AdminOutcome::Done(protocol::stats_response(
                    id,
                    &protocol::StatsReport {
                        generation: s.generation,
                        checksum: protocol::checksum_hex(s.checksum),
                        locked: s.locked,
                        hardened: s.hardened,
                        reloads: s.reloads,
                        rekeys: s.rekeys,
                        rollbacks: s.rollbacks,
                        requests: ctx.stats.requests.load(Ordering::Relaxed),
                        throttled: ctx.stats.throttled.load(Ordering::Relaxed),
                        uptime_secs: ctx.stats.started.elapsed().as_secs(),
                        requests_json: ctx.stats.requests_json.load(Ordering::Relaxed),
                        requests_binary: ctx.stats.requests_binary.load(Ordering::Relaxed),
                        active_connections: ctx.stats.active.load(Ordering::Relaxed),
                    },
                ))
            }
            protocol::AdminRequest::Metrics => AdminOutcome::Done(match metrics {
                Some(m) => m.render_json(id, Some(ctx.registry)),
                None => protocol::error_response(id, "metrics are not enabled on this server"),
            }),
            protocol::AdminRequest::Reload { snapshot, key } => {
                AdminOutcome::Offload(Box::new(move || {
                    let retired_age = ctx.registry.current().age();
                    let result = ctx
                        .registry
                        .reload_files(Path::new(&snapshot), key.as_deref().map(Path::new));
                    finish_swap(id, "reload", SwapKind::Reload, metrics, retired_age, result)
                }))
            }
            protocol::AdminRequest::Rekey { seed } => AdminOutcome::Offload(Box::new(move || {
                let retired_age = ctx.registry.current().age();
                let result = ctx.registry.rekey(seed);
                finish_swap(id, "rekey", SwapKind::Rekey, metrics, retired_age, result)
            })),
            protocol::AdminRequest::XferBegin { len } => {
                // A new `begin` implicitly aborts any prior transfer on
                // this connection (its staged file is removed on drop).
                self.stage = None;
                match SnapshotStage::begin(&std::env::temp_dir(), len) {
                    Ok(stage) => {
                        self.stage = Some(stage);
                        AdminOutcome::Done(protocol::xfer_response(id, 0))
                    }
                    Err(e) => AdminOutcome::Done(protocol::error_response(
                        id,
                        &format!("snapshot transfer rejected: {e}"),
                    )),
                }
            }
            protocol::AdminRequest::XferChunk { data } => match self.stage.as_mut() {
                None => AdminOutcome::Done(protocol::error_response(
                    id,
                    "no snapshot transfer in progress",
                )),
                Some(stage) => match stage.write_chunk(&data) {
                    Ok(received) => AdminOutcome::Done(protocol::xfer_response(id, received)),
                    Err(e) => {
                        // A poisoned stage cannot be resumed; drop it so
                        // the staged file is cleaned up immediately.
                        self.stage = None;
                        AdminOutcome::Done(protocol::error_response(
                            id,
                            &format!("snapshot transfer invalid: {e}"),
                        ))
                    }
                },
            },
            protocol::AdminRequest::XferCommit { key } => match self.stage.take() {
                None => AdminOutcome::Done(protocol::error_response(
                    id,
                    "no snapshot transfer in progress",
                )),
                Some(stage) => AdminOutcome::Offload(Box::new(move || match stage.finish() {
                    Ok(staged) => {
                        let retired_age = ctx.registry.current().age();
                        let result = ctx
                            .registry
                            .reload_files(staged.path(), key.as_deref().map(Path::new));
                        finish_swap(id, "reload", SwapKind::Reload, metrics, retired_age, result)
                    }
                    Err(e) => {
                        protocol::error_response(id, &format!("snapshot transfer invalid: {e}"))
                    }
                })),
            },
            protocol::AdminRequest::XferAbort => match self.stage.take() {
                None => AdminOutcome::Done(protocol::error_response(
                    id,
                    "no snapshot transfer in progress",
                )),
                Some(stage) => {
                    let received = stage.received();
                    drop(stage); // removes the staged file
                    AdminOutcome::Done(protocol::xfer_abort_response(id, received))
                }
            },
        }
    }
}

/// Shape/range validation of a classify row against a session; `Some`
/// is the rejection message (rendered per wire mode by the caller).
fn validate_against<S: ClassifySession>(levels: &[u16], session: &S) -> Option<String> {
    if levels.len() != session.n_features() {
        return Some(format!(
            "row has {} levels, model expects {}",
            levels.len(),
            session.n_features()
        ));
    }
    if let Some(bad) = levels
        .iter()
        .position(|&lv| usize::from(lv) >= session.m_levels())
    {
        return Some(format!(
            "level {} at feature {bad} out of range (M = {})",
            levels[bad],
            session.m_levels()
        ));
    }
    None
}

// ---------------------------------------------------------------------
// Wire-mode-agnostic rendering
// ---------------------------------------------------------------------

/// Renders an error response in the connection's wire format.
pub(crate) fn render_error(
    mode: WireMode,
    id: u64,
    message: &str,
    throttled: bool,
    overloaded: bool,
) -> Vec<u8> {
    match mode {
        WireMode::Json => {
            let line = if overloaded {
                protocol::overload_response(id, message)
            } else if throttled {
                protocol::throttle_response(id, message)
            } else {
                protocol::error_response(id, message)
            };
            line.into_bytes()
        }
        WireMode::Binary => wire::error_frame(id, message, throttled, overloaded),
    }
}

/// Renders an info response in the connection's wire format.
pub(crate) fn render_info(mode: WireMode, id: u64, info: &protocol::ServerInfo) -> Vec<u8> {
    match mode {
        WireMode::Json => protocol::info_response(id, info).into_bytes(),
        WireMode::Binary => wire::info_response_frame(id, info),
    }
}

/// Renders a batch-worker completion in the connection's wire format.
pub(crate) fn render_completion(mode: WireMode, done: &Completion) -> Vec<u8> {
    match (&done.result, mode) {
        (JobResult::Class(class), WireMode::Json) => {
            protocol::ok_response(done.id, *class, None).into_bytes()
        }
        (JobResult::Class(class), WireMode::Binary) => wire::class_frame(done.id, *class),
        (JobResult::ClassWithScores(class, scores), WireMode::Json) => {
            protocol::ok_response(done.id, *class, Some(scores)).into_bytes()
        }
        (JobResult::ClassWithScores(class, scores), WireMode::Binary) => {
            wire::scores_frame(done.id, *class, scores)
        }
        (JobResult::Matches(matches), WireMode::Json) => {
            protocol::matches_response(done.id, matches).into_bytes()
        }
        (JobResult::Matches(matches), WireMode::Binary) => wire::matches_frame(done.id, matches),
        (JobResult::Bulk(items), WireMode::Json) => {
            protocol::bulk_response(done.id, items).into_bytes()
        }
        (JobResult::Bulk(items), WireMode::Binary) => wire::bulk_response_frame(done.id, items),
        (JobResult::Rejected(msg), _) => render_error(mode, done.id, msg, false, false),
    }
}

// ---------------------------------------------------------------------
// Request dispatch (the policy seam both cores share)
// ---------------------------------------------------------------------

/// One parsed request, wire-format agnostic.
pub(crate) enum Incoming {
    Classify {
        id: u64,
        levels: Vec<u16>,
        want_scores: bool,
        /// `Some(k)` routes the row to top-k search instead of
        /// classification (same validation, window and admission path).
        search_k: Option<usize>,
    },
    /// Many rows under one id, from a binary BULK_CLASSIFY frame
    /// (JSON never produces this variant).
    Bulk {
        id: u64,
        rows: Vec<Vec<u16>>,
        want_scores: bool,
    },
    Info {
        id: u64,
    },
    Admin {
        id: u64,
        admin: protocol::AdminRequest,
    },
    /// A malformed request answered with an error; `fatal` closes the
    /// connection after the error is delivered (stream desync).
    Bad {
        id: u64,
        message: String,
        fatal: bool,
    },
}

/// Maps one parsed JSON request line to an [`Incoming`].
pub(crate) fn incoming_from_json(line: &str) -> Incoming {
    match protocol::parse_request(line) {
        Ok(request) => {
            if request.want_info {
                Incoming::Info { id: request.id }
            } else if let Some(admin) = request.admin {
                Incoming::Admin {
                    id: request.id,
                    admin,
                }
            } else {
                Incoming::Classify {
                    id: request.id,
                    levels: request.levels,
                    want_scores: request.want_scores,
                    search_k: request.search_k,
                }
            }
        }
        Err((id, message)) => Incoming::Bad {
            id,
            message,
            fatal: false,
        },
    }
}

/// Maps one complete binary frame to an [`Incoming`].
pub(crate) fn incoming_from_frame(header: &wire::FrameHeader, payload: &[u8]) -> Incoming {
    match wire::decode_request(header, payload) {
        Ok(wire::ServerFrame::Classify {
            id,
            levels,
            want_scores,
        }) => Incoming::Classify {
            id,
            levels,
            want_scores,
            search_k: None,
        },
        Ok(wire::ServerFrame::Search { id, levels, k }) => Incoming::Classify {
            id,
            levels,
            want_scores: false,
            search_k: Some(k),
        },
        Ok(wire::ServerFrame::BulkClassify {
            id,
            rows,
            want_scores,
        }) => Incoming::Bulk {
            id,
            rows,
            want_scores,
        },
        Ok(wire::ServerFrame::Info { id }) => Incoming::Info { id },
        Err((id, message)) => Incoming::Bad {
            id,
            message,
            fatal: false,
        },
    }
}

/// What a connection core provides per connection so the shared
/// dispatcher can answer requests: the negotiated wire mode, a write
/// path, the in-flight id set, and routes into the batch queue and the
/// admin executor.
pub(crate) trait ConnOutbox<'env> {
    /// Negotiated wire format.
    fn mode(&self) -> WireMode;
    /// Pipeline-window depth (≥ 1).
    fn window(&self) -> usize;
    /// Always-on server counters plus the optional telemetry plane.
    /// The `'env` inner lifetime lets dispatch copy the metrics
    /// reference out and keep it across `&mut self` calls.
    fn stats(&self) -> &CoreStats<'env>;
    /// Sends pre-rendered bytes (inline responses: errors, info,
    /// admin), ordered with respect to earlier sends.
    fn send_inline(&mut self, bytes: Vec<u8>);
    /// Whether `id` is currently in flight on this connection.
    fn inflight_contains(&self, id: u64) -> bool;
    /// Current pipeline depth.
    fn inflight_len(&self) -> usize;
    /// Marks `id` in flight.
    fn inflight_insert(&mut self, id: u64);
    /// Unmarks `id` (admission rejected it after the window check).
    fn inflight_remove(&mut self, id: u64);
    /// Hands one job (already validated/admitted) to the batch queue.
    fn enqueue(&mut self, id: u64, kind: JobKind);
    /// Runs a slow admin operation; its rendered response line must be
    /// delivered to this connection when it completes.
    fn offload_admin(&mut self, run: Box<dyn FnOnce() -> String + Send + 'env>);
}

/// Outcome of preparing a bulk frame for enqueue.
pub(crate) enum BulkPrep {
    /// The whole frame is rejected with one error (response would not
    /// fit a frame).
    Reject(String),
    /// Per-row slots in request order (valid rows plus in-place
    /// rejections), and how many rows admission throttled.
    Slots {
        slots: Vec<BulkSlot>,
        throttled_rows: u64,
    },
}

/// Validates and admits every row of a bulk frame, preserving request
/// order: invalid rows become in-place rejections (no admission budget
/// burned), throttled rows in-place throttle messages. The frame-level
/// guard rejects score requests whose response could not fit the wire's
/// frame cap no matter what the rows contain.
pub(crate) fn prepare_bulk<'env, B: RequestBrain<'env>>(
    brain: &mut B,
    rows: Vec<Vec<u16>>,
    want_scores: bool,
) -> BulkPrep {
    if want_scores {
        let classes = brain.server_info().classes;
        // Response-size bound: 4-byte count plus per row a 1-byte tag,
        // 4-byte class, 4-byte score count and 8 bytes per class score.
        let worst = 4 + rows.len() * (9 + 8 * classes);
        if worst > wire::MAX_PAYLOAD {
            return BulkPrep::Reject(format!(
                "bulk scores response for {} rows of {} classes would exceed the {} byte frame cap",
                rows.len(),
                classes,
                wire::MAX_PAYLOAD
            ));
        }
    }
    let mut slots = Vec::with_capacity(rows.len());
    let mut throttled_rows = 0u64;
    for row in rows {
        if let Some(msg) = brain.validate_levels(&row) {
            slots.push(BulkSlot::Rejected(msg));
        } else if let Err(msg) = brain.admit(&row) {
            throttled_rows += 1;
            slots.push(BulkSlot::Rejected(msg));
        } else {
            slots.push(BulkSlot::Row(row));
        }
    }
    BulkPrep::Slots {
        slots,
        throttled_rows,
    }
}

/// Handles one parsed request: the exact validation → duplicate-id →
/// window → admission → enqueue ordering both cores share. Returns
/// `false` when the connection must close (fatal framing fault).
///
/// This wrapper owns the per-request accounting: the always-on request
/// counters (total and per wire format) tick unconditionally, and with
/// telemetry on the whole parse→validate→admit→enqueue turn lands in
/// the dispatch-stage histogram. [`dispatch_inner`] does the actual
/// policy work and is timing-free.
pub(crate) fn dispatch_incoming<'env, B, O>(out: &mut O, brain: &mut B, incoming: Incoming) -> bool
where
    B: RequestBrain<'env>,
    O: ConnOutbox<'env>,
{
    let metrics = out.stats().metrics;
    out.stats().requests.fetch_add(1, Ordering::Relaxed);
    match out.mode() {
        WireMode::Json => {
            out.stats().requests_json.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics {
                m.requests_json.inc();
            }
        }
        WireMode::Binary => {
            out.stats().requests_binary.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics {
                m.requests_binary.inc();
            }
        }
    }
    let start = metrics.map(|_| Instant::now());
    let keep_open = dispatch_inner(out, brain, incoming);
    if let (Some(m), Some(start)) = (metrics, start) {
        m.dispatch_us.record(elapsed_us(start));
    }
    keep_open
}

/// The policy body of [`dispatch_incoming`].
fn dispatch_inner<'env, B, O>(out: &mut O, brain: &mut B, incoming: Incoming) -> bool
where
    B: RequestBrain<'env>,
    O: ConnOutbox<'env>,
{
    match incoming {
        Incoming::Info { id } => {
            let info = brain.server_info();
            let bytes = render_info(out.mode(), id, &info);
            out.send_inline(bytes);
        }
        Incoming::Admin { id, admin } => match brain.admin(id, admin) {
            AdminOutcome::Done(line) => out.send_inline(line.into_bytes()),
            AdminOutcome::Offload(run) => out.offload_admin(run),
        },
        Incoming::Bad { id, message, fatal } => {
            let bytes = render_error(out.mode(), id, &message, false, false);
            out.send_inline(bytes);
            return !fatal;
        }
        Incoming::Classify {
            id,
            levels,
            want_scores,
            search_k,
        } => {
            if let Some(msg) = brain.validate_levels(&levels) {
                let bytes = render_error(out.mode(), id, &msg, false, false);
                out.send_inline(bytes);
                return true;
            }
            if !check_window(out, id) {
                return true;
            }
            out.inflight_insert(id);
            // Admission runs last, after validation and windowing, so
            // malformed or back-pressured requests never consume the
            // connection's query budget.
            if let Err(msg) = brain.admit(&levels) {
                out.inflight_remove(id);
                out.stats().throttled.fetch_add(1, Ordering::Relaxed);
                let bytes = render_error(out.mode(), id, &msg, true, false);
                out.send_inline(bytes);
                return true;
            }
            out.enqueue(
                id,
                JobKind::Single {
                    levels,
                    want_scores,
                    search_k,
                },
            );
        }
        Incoming::Bulk {
            id,
            rows,
            want_scores,
        } => {
            // A bulk frame occupies ONE pipeline-window slot and counts
            // as one request; its rows meter admission individually.
            if !check_window(out, id) {
                return true;
            }
            match prepare_bulk(brain, rows, want_scores) {
                BulkPrep::Reject(msg) => {
                    let bytes = render_error(out.mode(), id, &msg, false, false);
                    out.send_inline(bytes);
                }
                BulkPrep::Slots {
                    slots,
                    throttled_rows,
                } => {
                    if throttled_rows > 0 {
                        out.stats()
                            .throttled
                            .fetch_add(throttled_rows, Ordering::Relaxed);
                    }
                    out.inflight_insert(id);
                    out.enqueue(id, JobKind::Bulk { slots, want_scores });
                }
            }
        }
    }
    true
}

/// Duplicate-id and pipeline-window checks shared by classify and bulk;
/// `false` means the request was answered inline and must not enqueue.
fn check_window<'env, O: ConnOutbox<'env>>(out: &mut O, id: u64) -> bool {
    if out.inflight_contains(id) {
        let bytes = render_error(
            out.mode(),
            id,
            &format!("request id {id} already in flight on this connection"),
            false,
            false,
        );
        out.send_inline(bytes);
        return false;
    }
    if out.inflight_len() >= out.window() {
        let bytes = render_error(
            out.mode(),
            id,
            &format!(
                "pipeline window full ({} requests in flight); \
                 drain responses before sending more",
                out.window()
            ),
            false,
            true,
        );
        out.send_inline(bytes);
        return false;
    }
    true
}

/// Tracks whether a binary read stream is still trustworthy after a
/// framing decision; shared by both cores' binary read paths.
pub(crate) enum FrameStep {
    /// One frame decoded (or answerable error) — keep going.
    Dispatch(Incoming),
    /// Buffer holds no complete frame yet.
    NeedMore,
    /// Stream desynchronized (bad magic): close silently.
    CloseSilent,
    /// Oversized length prefix: answer `Incoming::Bad { fatal }`, then
    /// close.
    CloseAfter(Incoming),
}

/// Pulls the next framing decision out of a frame buffer.
pub(crate) fn next_frame_step(frames: &mut wire::FrameBuffer) -> FrameStep {
    match frames.next_frame() {
        Ok(Some((header, payload))) => FrameStep::Dispatch(incoming_from_frame(&header, &payload)),
        Ok(None) => FrameStep::NeedMore,
        Err(wire::FatalFrameError::BadMagic(_)) => {
            // Desynchronized or not our protocol: no trustworthy id to
            // answer — close cleanly.
            FrameStep::CloseSilent
        }
        Err(wire::FatalFrameError::Oversized { id, len }) => {
            // The id sits before the length prefix, so it is still
            // trustworthy: answer, then close (the payload cannot be
            // skipped).
            FrameStep::CloseAfter(Incoming::Bad {
                id,
                message: format!(
                    "frame payload of {len} bytes exceeds the {} byte cap",
                    wire::MAX_PAYLOAD
                ),
                fatal: true,
            })
        }
    }
}

// ---------------------------------------------------------------------
// Shared registry worker loop
// ---------------------------------------------------------------------

/// Registry batch worker: every batch runs against the generation
/// current at pop time; rows that no longer fit that generation (a
/// shape-changing swap raced them) are answered with per-request
/// errors, never dropped.
pub(crate) fn registry_worker_loop(
    queue: &BatchQueue,
    registry: &ModelRegistry,
    config: &BatchConfig,
    served: &AtomicU64,
    metrics: Option<&ServeMetrics>,
) {
    while let Some(batch) = queue.next_batch(config) {
        let generation = registry.current();
        run_batch(
            generation.session(),
            config,
            batch,
            served,
            Some(generation.id()),
            metrics,
        );
    }
}

// ---------------------------------------------------------------------
// The front door: core selection
// ---------------------------------------------------------------------

/// Serves classify traffic for one fixed session on `listener` until
/// `shutdown` is raised, on the platform-default core ([`CoreKind`]).
///
/// Every connection speaks either the line-JSON protocol ([`protocol`])
/// or the binary frame protocol ([`wire`]), negotiated by first-byte
/// sniffing; requests from all connections funnel into one
/// [`BatchQueue`] and are answered by `config.workers` fused batch
/// calls, pipelined up to `config.pipeline_window` deep per connection.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve<S: ClassifySession>(
    listener: TcpListener,
    session: &S,
    config: &BatchConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    serve_with_core(CoreKind::default(), listener, session, config, shutdown)
}

/// [`serve`], pinned to an explicit connection core.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_with_core<S: ClassifySession>(
    core: CoreKind,
    listener: TcpListener,
    session: &S,
    config: &BatchConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    serve_with_core_metrics(core, listener, session, config, shutdown, None)
}

/// [`serve_with_core`] with the telemetry plane attached: every stage
/// of every request records into `metrics` (see [`ServeMetrics`]).
/// `None` is exactly [`serve_with_core`] — no clock reads, responses
/// byte-identical.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_with_core_metrics<S: ClassifySession>(
    core: CoreKind,
    listener: TcpListener,
    session: &S,
    config: &BatchConfig,
    shutdown: &AtomicBool,
    metrics: Option<&ServeMetrics>,
) -> std::io::Result<ServeStats> {
    match core {
        CoreKind::Threaded => crate::threaded::serve(listener, session, config, shutdown, metrics),
        CoreKind::Event => {
            #[cfg(target_os = "linux")]
            {
                crate::event_loop::serve(listener, session, config, shutdown, metrics)
            }
            #[cfg(not(target_os = "linux"))]
            {
                crate::threaded::serve(listener, session, config, shutdown, metrics)
            }
        }
    }
}

/// Serves classify traffic from a [`ModelRegistry`] on `listener` until
/// `shutdown` is raised, honoring admin requests and enforcing
/// per-connection admission control, on the platform-default core.
/// Connections are multiplexed exactly like [`serve`]'s: JSON or binary
/// by first-byte sniffing, pipelined up to
/// `config.batch.pipeline_window` in-flight requests, admission
/// metering every classify request identically in both formats.
///
/// Hot swaps are wait-free for traffic: a reload/rekey builds the new
/// generation entirely off the serving path, batches in flight finish
/// on the generation they grabbed, and the next batch picks up the new
/// one. Snapshots too big for one request body stream in over the wire
/// (`{"xfer":…}` — see [`protocol`]) into a checksummed staging file
/// and commit through the same reload path.
///
/// # Trust boundary
///
/// Admin requests (`reload` / `rekey` / `stats` / `xfer`) are an
/// **operator plane** carried on the same port for protocol simplicity
/// — they are not authenticated and are deliberately exempt from
/// admission budgets. In particular, `rekey` is seed-deterministic by
/// design (so rotation is reproducible and auditable), which means
/// whoever can send it can also derive the new key from the public
/// pool. Do not expose this listener to untrusted clients: bind it to
/// loopback / an internal network and front it with an authenticating
/// proxy, as you would any database admin port.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_registry(
    listener: TcpListener,
    registry: &ModelRegistry,
    config: &RegistryServeConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    serve_registry_with_core(CoreKind::default(), listener, registry, config, shutdown)
}

/// [`serve_registry`], pinned to an explicit connection core.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_registry_with_core(
    core: CoreKind,
    listener: TcpListener,
    registry: &ModelRegistry,
    config: &RegistryServeConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ServeStats> {
    serve_registry_with_core_metrics(core, listener, registry, config, shutdown, None)
}

/// [`serve_registry_with_core`] with the telemetry plane attached:
/// request stages, admission refusals by reason, generation swaps and
/// connection churn all record into `metrics` (see [`ServeMetrics`]),
/// and `{"metrics":true}` is answered with the structured JSON catalog.
/// `None` is exactly [`serve_registry_with_core`].
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_registry_with_core_metrics(
    core: CoreKind,
    listener: TcpListener,
    registry: &ModelRegistry,
    config: &RegistryServeConfig,
    shutdown: &AtomicBool,
    metrics: Option<&ServeMetrics>,
) -> std::io::Result<ServeStats> {
    match core {
        CoreKind::Threaded => {
            crate::threaded::serve_registry(listener, registry, config, shutdown, metrics)
        }
        CoreKind::Event => {
            #[cfg(target_os = "linux")]
            {
                crate::event_loop::serve_registry(listener, registry, config, shutdown, metrics)
            }
            #[cfg(not(target_os = "linux"))]
            {
                crate::threaded::serve_registry(listener, registry, config, shutdown, metrics)
            }
        }
    }
}

/// Ids of classify requests currently queued or running on one
/// connection; its size is the pipeline depth. (A shared alias so both
/// cores use the same structure.)
pub(crate) type InflightSet = HashSet<u64>;
