//! # hdc-serve — a request-batching inference server for HDC models
//!
//! The serving layer the ROADMAP calls for: a dependency-free
//! `std::net` TCP front end over the fused
//! [`InferenceSession`](hdc_model::InferenceSession) pipeline.
//!
//! * **Protocol** ([`protocol`]) — one JSON object per line in, one per
//!   line out; scriptable with `nc` and parseable by the vendored
//!   `serde_json` stand-in.
//! * **Batching** ([`batcher`]) — requests from all connections funnel
//!   into one queue; workers pop up to `max_batch` jobs (or whatever
//!   arrived within `max_wait`) and answer them with a *single* fused
//!   `encode_batch → search_batch` call, so heavy concurrent traffic
//!   runs at batch-kernel throughput.
//! * **Server** ([`server`]) — scoped-thread accept loop, per-
//!   connection handlers, graceful drain on shutdown. No async runtime,
//!   no external crates.
//! * **Load generator** ([`loadgen`]) — closed-loop clients reporting
//!   requests/sec and latency percentiles
//!   ([`hdc_model::LatencyStats`]); the numbers behind
//!   `BENCH_search.json`'s serving section.
//!
//! ## Quickstart
//!
//! ```
//! use hdc_serve::{demo, loadgen, server, BatchConfig, LoadgenConfig};
//! use std::net::TcpListener;
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! let model = demo::demo_model(&demo::DemoSpec {
//!     dim: 512,
//!     train_size: 64,
//!     ..Default::default()
//! });
//! let session = model.session();
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! let addr = listener.local_addr()?;
//! let shutdown = AtomicBool::new(false);
//!
//! std::thread::scope(|s| -> std::io::Result<()> {
//!     let server = s.spawn(|| {
//!         server::serve(listener, &session, &BatchConfig::default(), &shutdown)
//!     });
//!     let report = loadgen::run(addr, 16, 8, &LoadgenConfig {
//!         connections: 2,
//!         requests_per_connection: 5,
//!         seed: 1,
//!     })?;
//!     assert_eq!(report.total_requests, 10);
//!     shutdown.store(true, Ordering::SeqCst);
//!     server.join().expect("server thread")?;
//!     Ok(())
//! })?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batcher;
pub mod demo;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use batcher::{BatchConfig, BatchQueue};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use protocol::{ClassifyRequest, ClassifyResponse, ServerInfo};
pub use server::{serve, ServeStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Full wire round trip: responses match direct session calls,
    /// protocol errors are reported per request, shutdown is graceful.
    #[test]
    fn served_answers_match_direct_session() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &BatchConfig::default(), &shutdown));

            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();

            // A valid classify request answers with the session's class.
            let levels: Vec<u16> = (0..16).map(|i| (i % 8) as u16).collect();
            writer
                .write_all(protocol::request_line(1, &levels, false).as_bytes())
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert_eq!(resp.id, 1);
            assert_eq!(resp.class, Some(session.classify(&levels)));

            // Scores on demand, bit-equal to the session's.
            writer
                .write_all(protocol::request_line(2, &levels, true).as_bytes())
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            let refs: Vec<&[u16]> = vec![&levels];
            let want = session.scores_batch(&refs);
            let got = resp.scores.unwrap();
            assert_eq!(got.len(), session.n_classes());
            for (g, w) in got.iter().zip(want.scores(0)) {
                assert_eq!(g.to_bits(), w.to_bits());
            }

            // Wrong width and out-of-range levels are per-request errors.
            writer
                .write_all(protocol::request_line(3, &[1, 2], false).as_bytes())
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert_eq!(resp.id, 3);
            assert!(resp.error.unwrap().contains("model expects 16"));

            writer
                .write_all(protocol::request_line(4, &[200u16; 16], false).as_bytes())
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert!(resp.error.unwrap().contains("out of range"));

            // Info reports the model shape and the active kernel backend.
            writer
                .write_all(protocol::info_request_line(9).as_bytes())
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert_eq!(resp.id, 9);
            let info = resp.info.unwrap();
            assert_eq!(info.backend, session.kernel_backend());
            assert_eq!(info.dim, session.dim());
            assert_eq!(info.features, session.n_features());
            assert_eq!(info.levels, session.m_levels());
            assert_eq!(info.classes, session.n_classes());

            // Malformed JSON does not kill the connection.
            writer.write_all(b"{oops\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(protocol::parse_response(&line).unwrap().error.is_some());

            // The connection still works afterwards.
            writer
                .write_all(protocol::request_line(5, &levels, false).as_bytes())
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(protocol::parse_response(&line).unwrap().id, 5);

            drop(writer);
            drop(reader);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.connections, 1);
            assert_eq!(stats.requests, 7);
            // Requests 3, 4, the info request and the malformed line
            // were all answered without reaching the batch workers.
            assert_eq!(stats.classified, 3);
        });
    }

    /// Concurrent loadgen traffic is batched and every response checks
    /// out against the direct session path.
    #[test]
    fn loadgen_roundtrip_with_batching() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = BatchConfig {
            max_batch: 8,
            max_wait: std::time::Duration::from_micros(200),
            workers: 2,
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &config, &shutdown));
            let report = loadgen::run(
                addr,
                session.n_features(),
                session.m_levels(),
                &LoadgenConfig {
                    connections: 8,
                    requests_per_connection: 50,
                    seed: 7,
                },
            )
            .unwrap();
            assert_eq!(report.total_requests, 400);
            assert_eq!(report.errors, 0);
            assert!(report.requests_per_sec > 0.0);
            assert_eq!(report.latency.count, 400);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.requests, 400);
            assert_eq!(stats.classified, 400);
            assert_eq!(stats.connections, 8);
        });
    }
}
