//! # hdc-serve — a request-batching inference server for HDC models
//!
//! The serving layer the ROADMAP calls for: a dependency-free
//! `std::net` TCP front end over the fused
//! [`ClassifySession`](hdc_model::ClassifySession) pipeline, with hot
//! model swaps and admission control layered on top.
//!
//! * **Protocol** ([`protocol`]) — one JSON object per line in, one per
//!   line out; scriptable with `nc` and parseable by the vendored
//!   `serde_json` stand-in. Carries classify, `info`, admin
//!   (`reload` / `rekey` / `stats`) and structured throttle responses.
//! * **Binary wire format** ([`wire`]) — length-prefixed frames
//!   (magic + version + request id + opcode + payload) for high-volume
//!   clients: classify payloads are packed `u16` level rows, score
//!   vectors are raw `f64` bits — no float/text round trip anywhere.
//!   Negotiated per connection by first-byte sniffing (JSON stays the
//!   default), so every existing client keeps working. See the module
//!   docs for the frame-layout and opcode tables, or the standalone
//!   spec at `docs/wire.md` in the repository.
//! * **Batching** ([`batcher`]) — requests from all connections funnel
//!   into one queue; workers pop up to `max_batch` jobs (or whatever
//!   arrived within `max_wait`) and answer them with a *single* fused
//!   `encode_batch → search_batch` call, so heavy concurrent traffic
//!   runs at batch-kernel throughput.
//! * **Server** ([`server`]) — two interchangeable connection cores
//!   behind one request-policy layer (see *Serving architecture*
//!   below). No async runtime, no external crates. Every connection is
//!   a pipeline: up to `pipeline_window` in-flight requests, answered
//!   out of order as batch workers finish (clients match responses by
//!   id); a full window is answered with a structured *overload*
//!   error. [`server::serve`] drives one fixed session;
//!   [`server::serve_registry`] drives a
//!   [`ModelRegistry`](hdc_store::ModelRegistry), so snapshots can be
//!   hot-reloaded (including streamed over the wire in chunks),
//!   locked models re-keyed *behind* the running server — in-flight
//!   traffic finishes on the generation its batch grabbed, and the
//!   `info` response carries the generation id + snapshot checksum so
//!   clients can detect the swap. Admission control meters JSON and
//!   binary clients identically.
//! * **Admission** ([`admission`]) — per-connection query budgets
//!   (the attack crate's [`QueryBudget`](hdc_attack::QueryBudget)
//!   semantics), token-bucket rate limits and lock-probe
//!   feature-sweep detection, answered with structured
//!   `"throttled":true` errors.
//! * **Load generator** ([`loadgen`]) — closed-loop clients reporting
//!   requests/sec and latency percentiles
//!   ([`hdc_model::LatencyStats`]), in either wire format and at any
//!   pipeline depth — plus an open-loop fan-in mode
//!   ([`loadgen::run_fan_in`]) that multiplexes thousands of
//!   concurrent pipelined connections from one thread; the numbers
//!   behind `BENCH_search.json`'s serving, wire and concurrency
//!   sections.
//!
//! ## Serving architecture
//!
//! Request *policy* — wire negotiation, frame/line parsing decisions,
//! validation, admission metering, the pipeline window, bulk
//! preparation, admin routing — lives once, in [`server`], behind two
//! small traits (`server::RequestBrain` for what a request *means*,
//! `server::ConnOutbox` for where its effects *land*). Two
//! connection cores plug into that seam and are byte-for-byte
//! identical on the wire:
//!
//! ```text
//!              ┌──────────────────── policy (server.rs) ───────────────────┐
//!              │ sniff · parse · validate · admit · window · admin routing │
//!              └──────┬──────────────────────────────────────┬─────────────┘
//!   CoreKind::Event   │                  CoreKind::Threaded  │
//!   (Linux default)   ▼                  (portable fallback) ▼
//!   ┌─────────────────────────────┐   ┌──────────────────────────────────┐
//!   │ one epoll loop thread       │   │ accept loop                      │
//!   │  · nonblocking sockets      │   │  └ per connection:               │
//!   │  · per-conn state machines  │   │     reader thread + writer thread│
//!   │  · bounded write backlogs   │   │     (blocking I/O, mpsc channel) │
//!   │  · waker pipe for results   │   │                                  │
//!   └───────┬─────────────────────┘   └───────┬──────────────────────────┘
//!           │ jobs                            │ jobs
//!           ▼                                 ▼
//!   ┌────────────────────────────────────────────────────────────┐
//!   │ shared batch queue → worker pool (fused classify/search)   │
//!   │ + admin executor (reload / rekey / snapshot-xfer commit)   │
//!   └────────────────────────────────────────────────────────────┘
//! ```
//!
//! The event core ([`event_loop`], Linux only) multiplexes 10k+
//! concurrent connections on one thread and is the default there; the
//! threaded core ([`threaded`]) spends two threads per connection,
//! works everywhere `std::net` does, and doubles as the differential
//! baseline the event core is pinned against in tests. Pick explicitly
//! with [`serve_with_core`] / [`serve_registry_with_core`] and
//! [`CoreKind`].
//!
//! ## Observability
//!
//! The telemetry plane ([`metrics`]) is strictly opt-in: pass
//! `Some(&ServeMetrics)` to [`serve_with_core_metrics`] /
//! [`serve_registry_with_core_metrics`] and every stage of every
//! request records into lock-free counters, gauges and log-scaled
//! histograms (the zero-dependency `hdc_obs` crate); pass `None` and
//! no clock is read anywhere — responses are byte-identical either way
//! (pinned by a differential test) and the measured cost of turning
//! telemetry on is within the 3% `ci/bench_gates.json` gate
//! (`serving.telemetry.on_vs_off ≥ 0.97` on binary pipelined
//! classify).
//!
//! The series catalog, by plane:
//!
//! * **Requests** — `hdc_requests_total{wire=json|binary}`; stage
//!   histograms (µs) `hdc_stage_sniff_us` (first byte → wire mode),
//!   `hdc_stage_dispatch_us` (parse/validate/admit/enqueue),
//!   `hdc_stage_queue_wait_us` (enqueue → worker pop),
//!   `hdc_stage_execute_classify_us` / `hdc_stage_execute_search_us`
//!   (fused kernel calls), `hdc_stage_drain_us` (write-backlog drain);
//!   `hdc_batch_size` (jobs per popped batch).
//! * **Admission** — `hdc_throttled_total{reason=budget|rate|sweep}`,
//!   recorded from the typed [`ThrottleReason`] before stringification.
//! * **Event-loop internals** — `hdc_epoll_wait_us`,
//!   `hdc_wakeup_batch` (completions per waker event),
//!   `hdc_backlog_high_watermark_total`, `hdc_overload_rejects_total`,
//!   `hdc_connections_opened_total` / `hdc_connections_closed_total`,
//!   `hdc_active_connections`.
//! * **Registry lifecycle** — `hdc_swaps_total{kind=reload|rekey|rollback}`,
//!   `hdc_swapped_generation_age_secs`, `hdc_generation`,
//!   `hdc_generation_age_secs`, and `hdc_hardened` (1 when the serving
//!   generation encodes in constant-time hardened mode); each swap
//!   also emits one structured `event=swap …` log line.
//! * **HDLock audit** — `hdc_vault_reads` / `hdc_vault_denied_reads`
//!   (privileged key-vault accesses of the serving generation) and the
//!   process-wide kernel row counters `hdc_kernel_hamming_rows` /
//!   `hdc_kernel_dot_rows`.
//!
//! Three exposition paths: the `{"metrics":true}` admin request
//! returns a structured one-line JSON summary (counts + p50/p90/p99/
//! p999 per stage); [`serve_scrapes`] (wired to `hdc_serve
//! --metrics-addr`) answers Prometheus text-format scrapes on a
//! separate listener; and swap events log structured lines to stderr.
//! `hdc_loadgen --metrics-delta` diffs two scrapes of the admin
//! request around a run to print server-side stage percentiles next to
//! the client-observed latency histogram. The full series catalog with
//! per-series semantics lives at `docs/metrics.md` in the repository.
//!
//! ## Hardened serving mode
//!
//! `hdc_serve --locked L --hardened` serves a locked generation whose
//! encoder runs in `hdlock::DeriveMode::Hardened`: every encode does
//! fixed, input-independent work (full bound-pair table stride with a
//! branchless select, oblivious key-vault reads, pruned top-k replaced
//! by the fixed-shape exact scan), closing the cache-warmth timing
//! side channel demonstrated by `hdc_attack::warmth_distinguisher`.
//! Responses stay bit-identical to the unhardened server (pinned by an
//! integration test); the mode is reported by the `info`/`stats` admin
//! responses and the `hdc_hardened` gauge, and survives live rekeys.
//! Threat model and residual risks: `SECURITY.md` in the repository.
//!
//! ## Quickstart
//!
//! ```
//! use hdc_serve::{demo, loadgen, server, BatchConfig, LoadgenConfig};
//! use std::net::TcpListener;
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! let model = demo::demo_model(&demo::DemoSpec {
//!     dim: 512,
//!     train_size: 64,
//!     ..Default::default()
//! });
//! let session = model.session();
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! let addr = listener.local_addr()?;
//! let shutdown = AtomicBool::new(false);
//!
//! std::thread::scope(|s| -> std::io::Result<()> {
//!     let server = s.spawn(|| {
//!         server::serve(listener, &session, &BatchConfig::default(), &shutdown)
//!     });
//!     let report = loadgen::run(addr, 16, 8, &LoadgenConfig {
//!         connections: 2,
//!         requests_per_connection: 5,
//!         seed: 1,
//!         ..Default::default()
//!     })?;
//!     assert_eq!(report.total_requests, 10);
//!     shutdown.store(true, Ordering::SeqCst);
//!     server.join().expect("server thread")?;
//!     Ok(())
//! })?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! See `examples/hot_reload.rs` for the registry-backed variant
//! (snapshot reload, live rekey, admission budgets).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod batcher;
pub mod demo;
pub mod epoll;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod threaded;
pub mod wire;

pub use admission::{AdmissionConfig, ConnectionAdmission, ThrottleReason};
pub use batcher::{BatchConfig, BatchQueue};
pub use loadgen::{FanInConfig, LoadReport, LoadgenConfig};
pub use metrics::{serve_scrapes, ServeMetrics, SwapKind};
pub use protocol::{
    AdminRequest, ClassifyRequest, ClassifyResponse, SearchMatch, ServerInfo, StatsReport, SwapInfo,
};
pub use server::{
    serve, serve_registry, serve_registry_with_core, serve_registry_with_core_metrics,
    serve_with_core, serve_with_core_metrics, CoreKind, RegistryServeConfig, ServeStats,
};
pub use wire::WireMode;

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_store::{KeySegment, ModelRegistry, ModelSnapshot, RekeySource};
    use hdlock::{EncodingKey, LockedEncoder};
    use hypervec::HvRng;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Blocking line-oriented test client.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
        line: String,
    }

    impl Client {
        fn connect(addr: std::net::SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
                line: String::new(),
            }
        }

        fn roundtrip(&mut self, request: &str) -> ClassifyResponse {
            self.writer.write_all(request.as_bytes()).unwrap();
            self.line.clear();
            self.reader.read_line(&mut self.line).unwrap();
            protocol::parse_response(&self.line).unwrap()
        }
    }

    /// Full wire round trip: responses match direct session calls,
    /// protocol errors are reported per request, shutdown is graceful.
    #[test]
    fn served_answers_match_direct_session() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &BatchConfig::default(), &shutdown));

            let mut client = Client::connect(addr);

            // A valid classify request answers with the session's class.
            let levels: Vec<u16> = (0..16).map(|i| (i % 8) as u16).collect();
            let resp = client.roundtrip(&protocol::request_line(1, &levels, false));
            assert_eq!(resp.id, 1);
            assert_eq!(resp.class, Some(session.classify(&levels)));

            // Scores on demand, bit-equal to the session's.
            let resp = client.roundtrip(&protocol::request_line(2, &levels, true));
            let refs: Vec<&[u16]> = vec![&levels];
            let want = session.scores_batch(&refs);
            let got = resp.scores.unwrap();
            assert_eq!(got.len(), session.n_classes());
            for (g, w) in got.iter().zip(want.scores(0)) {
                assert_eq!(g.to_bits(), w.to_bits());
            }

            // Wrong width and out-of-range levels are per-request errors.
            let resp = client.roundtrip(&protocol::request_line(3, &[1, 2], false));
            assert_eq!(resp.id, 3);
            assert!(resp.error.unwrap().contains("model expects 16"));
            assert!(!resp.throttled);

            let resp = client.roundtrip(&protocol::request_line(4, &[200u16; 16], false));
            assert!(resp.error.unwrap().contains("out of range"));

            // Info reports the model shape and the active kernel backend;
            // a non-registry server is always generation 0.
            let resp = client.roundtrip(&protocol::info_request_line(9));
            assert_eq!(resp.id, 9);
            let info = resp.info.unwrap();
            assert_eq!(info.backend, session.kernel_backend());
            assert_eq!(info.dim, session.dim());
            assert_eq!(info.features, session.n_features());
            assert_eq!(info.levels, session.m_levels());
            assert_eq!(info.classes, session.n_classes());
            assert_eq!(info.generation, 0);
            assert_eq!(info.checksum, protocol::checksum_hex(0));

            // Admin requests need the registry server.
            let resp = client.roundtrip(&protocol::stats_request_line(10));
            assert!(resp.error.unwrap().contains("registry"));

            // Malformed JSON does not kill the connection.
            let resp = client.roundtrip("{oops\n");
            assert!(resp.error.is_some());

            // The connection still works afterwards.
            let resp = client.roundtrip(&protocol::request_line(5, &levels, false));
            assert_eq!(resp.id, 5);

            drop(client);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.connections, 1);
            assert_eq!(stats.requests, 8);
            // Requests 3, 4, the info request, the stats request and the
            // malformed line were all answered without reaching the
            // batch workers.
            assert_eq!(stats.classified, 3);
            assert_eq!(stats.throttled, 0);
        });
    }

    /// Concurrent loadgen traffic is batched and every response checks
    /// out against the direct session path.
    #[test]
    fn loadgen_roundtrip_with_batching() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = BatchConfig {
            max_batch: 8,
            max_wait: std::time::Duration::from_micros(200),
            workers: 2,
            ..BatchConfig::default()
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &config, &shutdown));
            let report = loadgen::run(
                addr,
                session.n_features(),
                session.m_levels(),
                &LoadgenConfig {
                    connections: 8,
                    requests_per_connection: 50,
                    seed: 7,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(report.total_requests, 400);
            assert_eq!(report.errors, 0);
            assert!(report.requests_per_sec > 0.0);
            assert_eq!(report.latency.count, 400);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.requests, 400);
            assert_eq!(stats.classified, 400);
            assert_eq!(stats.connections, 8);
        });
    }

    /// Admission: a client exceeding its query budget gets structured
    /// throttle errors while a neighbor connection is untouched.
    #[test]
    fn admission_throttles_one_client_not_the_other() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let registry = demo::demo_locked_registry(&spec, 2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig {
            batch: BatchConfig::default(),
            admission: AdmissionConfig {
                query_budget: 5,
                ..AdmissionConfig::default()
            },
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));

            let mut greedy = Client::connect(addr);
            let mut honest = Client::connect(addr);
            let row = |i: u16| -> Vec<u16> {
                (0..spec.n_features)
                    .map(|f| ((usize::from(i) + f) % spec.m_levels) as u16)
                    .collect()
            };

            // The greedy client gets its 5 budgeted answers…
            for i in 0..5u16 {
                let resp = greedy.roundtrip(&protocol::request_line(u64::from(i), &row(i), false));
                assert!(resp.class.is_some(), "within budget: {resp:?}");
            }
            // …then structured throttles, not hard failures.
            for i in 5..8u16 {
                let resp = greedy.roundtrip(&protocol::request_line(u64::from(i), &row(i), false));
                assert!(resp.throttled, "over budget: {resp:?}");
                assert!(resp.error.unwrap().contains("budget"));
            }

            // The honest neighbor is unaffected — budgets are per
            // connection, so its own (within-budget) requests all land
            // even though the greedy client just burned through its
            // allowance.
            for i in 0..5u16 {
                let resp =
                    honest.roundtrip(&protocol::request_line(u64::from(100 + i), &row(i), false));
                assert!(resp.class.is_some(), "neighbor request {i}: {resp:?}");
            }

            // Stats surface the throttle count.
            let resp = honest.roundtrip(&protocol::stats_request_line(999));
            let stats = resp.stats.unwrap();
            assert_eq!(stats.throttled, 3);
            assert!(stats.locked);
            assert_eq!(stats.generation, 1);

            drop(greedy);
            drop(honest);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.throttled, 3);
            assert_eq!(stats.connections, 2);
        });
    }

    /// The rekey acceptance run: a live rekey lands under closed-loop
    /// load with zero failed requests, post-swap responses are
    /// bit-identical to a cold-started server on the new key, and the
    /// old generation's vault is destroyed.
    #[test]
    fn live_rekey_under_load_is_lossless_and_bit_identical() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let (model, train) = demo::demo_locked_model(&spec, 2);
        let snapshot = ModelSnapshot::from_locked_model(&model);
        let key = KeySegment::from_locked_encoder(model.encoder()).unwrap();
        let registry = ModelRegistry::from_snapshot(snapshot, Some(&key))
            .unwrap()
            .with_rekey_source(RekeySource {
                config: demo::demo_config(&spec),
                train: train.clone(),
            });

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig::default();
        const REKEY_SEED: u64 = 20_220_711;

        let old_generation = registry.current();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));

            // Closed-loop load in the background…
            let load = s.spawn(|| {
                loadgen::run(
                    addr,
                    spec.n_features,
                    spec.m_levels,
                    &LoadgenConfig {
                        connections: 4,
                        requests_per_connection: 120,
                        seed: 11,
                        ..Default::default()
                    },
                )
                .unwrap()
            });

            // …and a rekey right through the middle of it.
            let mut admin = Client::connect(addr);
            let resp = admin.roundtrip(&protocol::rekey_request_line(1, REKEY_SEED));
            let swapped = resp.swapped.expect("rekey swaps");
            assert_eq!(swapped.generation, 2);

            // Zero failed/dropped requests across the swap.
            let report = load.join().unwrap();
            assert_eq!(report.total_requests, 480);
            assert_eq!(report.errors, 0, "requests failed across the rekey");

            // The info response reflects the swap.
            let resp = admin.roundtrip(&protocol::info_request_line(2));
            let info = resp.info.unwrap();
            assert_eq!(info.generation, 2);
            assert_eq!(info.checksum, swapped.checksum);

            // Post-swap responses are bit-identical to a cold-started
            // model under the same key seed.
            let mut rng = HvRng::from_seed(REKEY_SEED);
            let cold_key = EncodingKey::random(
                &mut rng,
                spec.n_features,
                2,
                model.encoder().pool().len(),
                spec.dim,
            )
            .unwrap();
            let cold_enc = LockedEncoder::from_parts(
                model.encoder().pool().clone(),
                model.encoder().values().clone(),
                cold_key,
            )
            .unwrap();
            let cold =
                hdc_model::HdcModel::fit_with_encoder(&demo::demo_config(&spec), cold_enc, &train)
                    .unwrap();
            let cold_session = cold.session();
            for i in 0..12u16 {
                let row: Vec<u16> = (0..spec.n_features)
                    .map(|f| ((usize::from(i) * 3 + f) % spec.m_levels) as u16)
                    .collect();
                let resp = admin.roundtrip(&protocol::request_line(u64::from(10 + i), &row, true));
                assert_eq!(resp.class, Some(cold_session.classify(&row)), "row {i}");
                let refs: Vec<&[u16]> = vec![&row];
                let want = cold_session.scores_batch(&refs);
                for (g, w) in resp.scores.unwrap().iter().zip(want.scores(0)) {
                    assert_eq!(g.to_bits(), w.to_bits(), "row {i}");
                }
            }

            // The old generation's vault is destroyed: reads frozen.
            let old_vault = old_generation.session().encoder().vault().unwrap();
            assert!(!old_vault.is_sealed());
            assert!(old_vault.with_key(|_| ()).is_err());

            drop(admin);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.throttled, 0);
            assert!(stats.requests >= 480);
        });
    }

    /// Hot reload through the wire: save a snapshot, `reload` it, and
    /// watch the generation + checksum change in `info`.
    #[test]
    fn wire_reload_swaps_generations() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let registry = demo::demo_locked_registry(&spec, 2);
        let boot_checksum = registry.current().checksum();

        // A replacement *standard* model, snapshotted to disk.
        let dir = std::env::temp_dir().join("hdc_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("replacement.hdsn");
        let replacement = demo::demo_model(&demo::DemoSpec { seed: 999, ..spec });
        ModelSnapshot::from_standard_model(&replacement)
            .save(&snap_path)
            .unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig::default();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));
            let mut client = Client::connect(addr);

            let info = client
                .roundtrip(&protocol::info_request_line(1))
                .info
                .unwrap();
            assert_eq!(info.generation, 1);
            assert_eq!(info.checksum, protocol::checksum_hex(boot_checksum));

            // Reload from the file; no key segment (standard model).
            let resp = client.roundtrip(&protocol::reload_request_line(
                2,
                snap_path.to_str().unwrap(),
                None,
            ));
            let swapped = resp.swapped.expect("reload swaps");
            assert_eq!(swapped.generation, 2);
            assert_ne!(swapped.checksum, info.checksum);

            let info = client
                .roundtrip(&protocol::info_request_line(3))
                .info
                .unwrap();
            assert_eq!(info.generation, 2);
            assert_eq!(info.checksum, swapped.checksum);

            // Served answers now come from the replacement model.
            let row: Vec<u16> = (0..spec.n_features)
                .map(|f| (f % spec.m_levels) as u16)
                .collect();
            let resp = client.roundtrip(&protocol::request_line(4, &row, false));
            assert_eq!(resp.class, Some(replacement.session().classify(&row)));

            // Reloading a missing file fails cleanly, serving continues.
            let resp = client.roundtrip(&protocol::reload_request_line(
                5,
                dir.join("nope.hdsn").to_str().unwrap(),
                None,
            ));
            assert!(resp.error.unwrap().contains("reload failed"));
            let resp = client.roundtrip(&protocol::request_line(6, &row, false));
            assert!(resp.class.is_some());

            drop(client);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
        let _ = std::fs::remove_file(&snap_path);
    }

    /// Blocking binary-frame test client.
    struct BinClient {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl BinClient {
        fn connect(addr: std::net::SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            BinClient {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
            }
        }

        fn send(&mut self, bytes: &[u8]) {
            self.writer.write_all(bytes).unwrap();
        }

        fn recv(&mut self) -> ClassifyResponse {
            let (header, payload) = wire::read_frame(&mut self.reader).unwrap();
            wire::decode_response(&header, &payload).unwrap()
        }

        fn roundtrip(&mut self, bytes: &[u8]) -> ClassifyResponse {
            self.send(bytes);
            self.recv()
        }

        /// Collects `n` responses into an id-keyed map (pipelined
        /// completions arrive in any order).
        fn recv_n(&mut self, n: usize) -> std::collections::HashMap<u64, ClassifyResponse> {
            let mut out = std::collections::HashMap::new();
            for _ in 0..n {
                let resp = self.recv();
                assert!(out.insert(resp.id, resp).is_none(), "duplicate response id");
            }
            out
        }
    }

    /// The binary wire answers bit-identically to the JSON wire and the
    /// direct session, on the same server, sniffed per connection.
    #[test]
    fn binary_wire_matches_json_and_session() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &BatchConfig::default(), &shutdown));

            let mut json = Client::connect(addr);
            let mut bin = BinClient::connect(addr);

            for i in 0..8u16 {
                let levels: Vec<u16> = (0..16).map(|f| ((usize::from(i) + f) % 8) as u16).collect();
                let id = u64::from(i) + 1;
                let jr = json.roundtrip(&protocol::request_line(id, &levels, true));
                let br = bin.roundtrip(&wire::classify_frame(id, &levels, true));
                assert_eq!(br.id, id);
                assert_eq!(br.class, jr.class);
                assert_eq!(br.class, Some(session.classify(&levels)));
                // Scores bit-identical across wire formats (the binary
                // wire ships raw f64 bits; JSON round-trips via `{:?}`).
                let js = jr.scores.unwrap();
                let bs = br.scores.unwrap();
                assert_eq!(js.len(), bs.len());
                for (a, b) in js.iter().zip(&bs) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
                }
            }

            // Binary info matches the JSON info.
            let ji = json
                .roundtrip(&protocol::info_request_line(100))
                .info
                .unwrap();
            let bi = bin.roundtrip(&wire::info_frame(100)).info.unwrap();
            assert_eq!(ji, bi);

            // Validation errors are structured on the binary wire too.
            let resp = bin.roundtrip(&wire::classify_frame(101, &[1, 2], false));
            assert!(resp.error.unwrap().contains("model expects 16"));

            drop(json);
            drop(bin);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    /// The `search` request answers top-k hits bit-identical to a
    /// direct [`hdc_model::TopKSession`] call, on both wire formats,
    /// through the same batcher — and the loadgen's search mode drives
    /// it with zero errors.
    #[test]
    fn search_requests_match_topk_session_on_both_wires() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &BatchConfig::default(), &shutdown));

            let mut json = Client::connect(addr);
            let mut bin = BinClient::connect(addr);
            let k = 3;
            let topk = hdc_model::TopKSession::new(&session, k);

            for i in 0..6u16 {
                let levels: Vec<u16> = (0..16).map(|f| ((usize::from(i) + f) % 8) as u16).collect();
                let id = u64::from(i) + 1;
                let want = topk.search_batch(&[levels.as_slice()]);
                let want = want.matches(0);

                let jr = json.roundtrip(&protocol::search_request_line(id, &levels, k));
                let br = bin.roundtrip(&wire::search_frame(id, &levels, k));
                assert_eq!((jr.id, br.id), (id, id));
                let jm = jr.matches.unwrap();
                let bm = br.matches.unwrap();
                assert_eq!(jm.len(), want.len());
                assert_eq!(bm.len(), want.len());
                for ((j, b), w) in jm.iter().zip(&bm).zip(want) {
                    assert_eq!(usize::try_from(j.row).unwrap(), w.row, "row {i}");
                    assert_eq!(usize::try_from(b.row).unwrap(), w.row, "row {i}");
                    // Scores bit-identical across wire formats and
                    // against the direct session call.
                    assert_eq!(j.score.to_bits(), w.score.to_bits(), "row {i}");
                    assert_eq!(b.score.to_bits(), w.score.to_bits(), "row {i}");
                }
            }

            // k larger than the row count returns every row, and a
            // malformed search (wrong row shape) answers a structured
            // error without killing the connection.
            let levels: Vec<u16> = (0..16).map(|f| (f % 8) as u16).collect();
            let resp = json.roundtrip(&protocol::search_request_line(50, &levels, 100));
            assert_eq!(resp.matches.unwrap().len(), session.n_classes());
            let resp = bin.roundtrip(&wire::search_frame(51, &[1, 2], 3));
            assert!(resp.error.unwrap().contains("model expects 16"));
            let resp = bin.roundtrip(&wire::search_frame(52, &levels, 2));
            assert_eq!(resp.matches.unwrap().len(), 2);

            // Loadgen search mode, both wires: every response carried a
            // match list (anything else counts as an error).
            for wire_mode in [WireMode::Json, WireMode::Binary] {
                let report = loadgen::run(
                    addr,
                    session.n_features(),
                    session.m_levels(),
                    &LoadgenConfig {
                        connections: 2,
                        requests_per_connection: 50,
                        seed: 29,
                        wire: wire_mode,
                        pipeline: 4,
                        search_k: Some(k),
                    },
                )
                .unwrap();
                assert_eq!(report.total_requests, 100, "{wire_mode:?}");
                assert_eq!(report.errors, 0, "{wire_mode:?}");
            }

            drop(json);
            drop(bin);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    /// Pipelined requests complete out of order and are matched by id;
    /// the loadgen's pipelined binary client sees zero errors.
    #[test]
    fn pipelined_requests_match_by_id_in_both_wire_formats() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &BatchConfig::default(), &shutdown));

            // Hand-rolled pipelined burst: 16 frames written back to
            // back, then 16 completions collected in whatever order
            // the batch workers finished them.
            let mut bin = BinClient::connect(addr);
            let rows: Vec<Vec<u16>> = (0..16u64)
                .map(|i| (0..16).map(|f| ((i as usize + f) % 8) as u16).collect())
                .collect();
            let mut burst = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                burst.extend(wire::classify_frame(1000 + i as u64, row, false));
            }
            bin.send(&burst);
            let responses = bin.recv_n(rows.len());
            for (i, row) in rows.iter().enumerate() {
                let resp = &responses[&(1000 + i as u64)];
                assert_eq!(resp.class, Some(session.classify(row)), "row {i}");
            }

            // The loadgen's pipelined clients in both formats: every
            // response matched an outstanding id (errors would count).
            for wire_mode in [WireMode::Json, WireMode::Binary] {
                let report = loadgen::run(
                    addr,
                    session.n_features(),
                    session.m_levels(),
                    &LoadgenConfig {
                        connections: 4,
                        requests_per_connection: 100,
                        seed: 13,
                        wire: wire_mode,
                        pipeline: 8,
                        search_k: None,
                    },
                )
                .unwrap();
                assert_eq!(report.total_requests, 400, "{wire_mode:?}");
                assert_eq!(report.errors, 0, "{wire_mode:?}");
            }

            drop(bin);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    /// Malformed binary frames: unknown opcode, wrong version, and
    /// request-id reuse answer structured errors without killing the
    /// sibling in-flight requests on the same connection; oversized
    /// length prefixes answer then close; truncated headers and bad
    /// magic close cleanly — and none of it disturbs a neighbor
    /// connection.
    #[test]
    fn malformed_binary_frames_spare_siblings() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        // A slow batch window keeps enqueued jobs in flight long
        // enough for the sibling/reuse assertions to be deterministic.
        let config = BatchConfig {
            max_batch: 64,
            max_wait: std::time::Duration::from_millis(30),
            workers: 1,
            ..BatchConfig::default()
        };
        let levels: Vec<u16> = (0..16).map(|f| (f % 8) as u16).collect();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &config, &shutdown));
            let mut neighbor = Client::connect(addr);

            // One burst: valid (id 1) · unknown opcode (id 2) · wrong
            // version (id 3) · id-reuse of 1 · valid (id 4). The two
            // valid classifies sit in the batch window while the three
            // malformed ones answer immediately — five responses, no
            // casualties.
            let mut bin = BinClient::connect(addr);
            let mut burst = wire::classify_frame(1, &levels, false);
            let mut bad_op = wire::classify_frame(2, &levels, false);
            bad_op[3] = 0x7E;
            burst.extend(&bad_op);
            let mut bad_ver = wire::classify_frame(3, &levels, false);
            bad_ver[2] = wire::WIRE_VERSION + 1;
            burst.extend(&bad_ver);
            burst.extend(wire::classify_frame(1, &levels, false)); // reuse
            burst.extend(wire::classify_frame(4, &levels, false));
            bin.send(&burst);

            // Five responses, any order; two share id 1 (the classify
            // result and the reuse error).
            let responses: Vec<ClassifyResponse> = (0..5).map(|_| bin.recv()).collect();
            let by_id = |id: u64| responses.iter().filter(move |r| r.id == id);
            assert!(by_id(1).any(|r| r.class == Some(session.classify(&levels))));
            assert!(by_id(1).any(|r| r
                .error
                .as_deref()
                .is_some_and(|e| e.contains("already in flight"))));
            assert!(by_id(2).all(|r| r.error.as_ref().unwrap().contains("opcode")));
            assert!(by_id(3).all(|r| r.error.as_ref().unwrap().contains("version")));
            assert!(by_id(4).all(|r| r.class == Some(session.classify(&levels))));
            assert_eq!(by_id(1).count(), 2);
            for id in 2..=4 {
                assert_eq!(by_id(id).count(), 1, "id {id}");
            }

            // The connection still serves after all that.
            let resp = bin.roundtrip(&wire::classify_frame(9, &levels, false));
            assert_eq!(resp.class, Some(session.classify(&levels)));

            // Oversized length prefix: answered with the echoed id,
            // then the connection closes.
            let mut oversized = wire::classify_frame(77, &levels, false);
            oversized[12..16].copy_from_slice(&(wire::MAX_PAYLOAD as u32 + 1).to_le_bytes());
            bin.send(&oversized);
            let resp = bin.recv();
            assert_eq!(resp.id, 77);
            assert!(resp.error.unwrap().contains("exceeds"));
            let mut probe = [0u8; 1];
            assert_eq!(bin.reader.read(&mut probe).unwrap(), 0, "clean close");

            // Truncated header (EOF mid-frame): clean close, no crash.
            // (`shutdown(Write)` sends the FIN; dropping one clone of
            // the stream would not, since the reader half keeps the
            // socket open.)
            let mut trunc = BinClient::connect(addr);
            trunc.send(&wire::classify_frame(5, &levels, false)[..7]);
            trunc.writer.shutdown(std::net::Shutdown::Write).unwrap();
            assert_eq!(trunc.reader.read(&mut probe).unwrap(), 0);

            // Bad magic mid-stream: the in-flight sibling is answered,
            // then the stream closes without an error frame.
            let mut desync = BinClient::connect(addr);
            let mut burst = wire::classify_frame(6, &levels, false);
            // A full header's worth of garbage: fewer bytes would just
            // look like a frame still in flight.
            burst.extend([0xFFu8; wire::HEADER_LEN]);
            desync.send(&burst);
            let resp = desync.recv();
            assert_eq!(resp.id, 6);
            assert!(resp.class.is_some());
            assert_eq!(desync.reader.read(&mut probe).unwrap(), 0);

            // The neighbor JSON connection never noticed any of it.
            let resp = neighbor.roundtrip(&protocol::request_line(500, &levels, false));
            assert_eq!(resp.class, Some(session.classify(&levels)));

            drop(neighbor);
            drop(bin);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    /// Back-pressure: a client that overruns the pipeline window gets
    /// structured overload errors (JSON `"overloaded":true`, binary
    /// flag bit 1) while the windowed requests all complete.
    #[test]
    fn pipeline_window_overload_is_structured() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = BatchConfig {
            max_batch: 64,
            max_wait: std::time::Duration::from_millis(40),
            workers: 1,
            pipeline_window: 2,
            ..BatchConfig::default()
        };
        let levels: Vec<u16> = (0..16).map(|f| (f % 8) as u16).collect();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &config, &shutdown));

            // Binary: 4 pipelined sends into a window of 2 — two
            // overload errors, two eventual completions.
            let mut bin = BinClient::connect(addr);
            let mut burst = Vec::new();
            for id in 1..=4u64 {
                burst.extend(wire::classify_frame(id, &levels, false));
            }
            bin.send(&burst);
            let responses = bin.recv_n(4);
            let overloaded = responses.values().filter(|r| r.overloaded).count();
            let classified = responses.values().filter(|r| r.class.is_some()).count();
            assert_eq!((overloaded, classified), (2, 2), "window 2: {responses:?}");

            // JSON: same thing, `"overloaded":true` on the line.
            let json_stream = TcpStream::connect(addr).unwrap();
            let mut json_reader = BufReader::new(json_stream.try_clone().unwrap());
            let mut json_writer = json_stream;
            let mut burst = String::new();
            for id in 11..=14u64 {
                burst.push_str(&protocol::request_line(id, &levels, false));
            }
            json_writer.write_all(burst.as_bytes()).unwrap();
            let mut overloaded = 0;
            let mut classified = 0;
            for _ in 0..4 {
                let mut line = String::new();
                json_reader.read_line(&mut line).unwrap();
                let resp = protocol::parse_response(&line).unwrap();
                if resp.overloaded {
                    overloaded += 1;
                    assert!(resp.error.unwrap().contains("window full"));
                } else {
                    classified += 1;
                }
            }
            assert_eq!((overloaded, classified), (2, 2));

            drop(bin);
            drop(json_reader);
            drop(json_writer);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    /// A client that floods requests without reading responses hits
    /// the writer-backlog cap: the reader pauses (bounding server-side
    /// memory) and resumes as the client drains — every request still
    /// gets exactly one response.
    #[test]
    fn flooding_client_is_backpressured_not_buffered() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        // A tiny window keeps the backlog cap (window + slack) small
        // relative to the flood, so the pause path actually engages.
        let config = BatchConfig {
            pipeline_window: 4,
            ..BatchConfig::default()
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &config, &shutdown));

            // 2000 malformed lines, written without reading anything:
            // each produces an inline error response the pipeline
            // window does not meter.
            const FLOOD: usize = 2000;
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let flood: String = (0..FLOOD).map(|i| format!("{{\"id\":{i},oops\n")).collect();
            writer.write_all(flood.as_bytes()).unwrap();

            // Now drain: all FLOOD error responses arrive, ids intact.
            let mut seen = 0usize;
            let mut line = String::new();
            for _ in 0..FLOOD {
                line.clear();
                reader.read_line(&mut line).unwrap();
                let resp = protocol::parse_response(&line).unwrap();
                assert_eq!(resp.id, seen as u64, "responses arrive in send order");
                assert!(resp.error.is_some());
                seen += 1;
            }
            assert_eq!(seen, FLOOD);

            // The connection still classifies.
            let levels: Vec<u16> = (0..16).map(|f| (f % 8) as u16).collect();
            writer
                .write_all(protocol::request_line(99_999, &levels, false).as_bytes())
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert_eq!(resp.class, Some(session.classify(&levels)));

            drop(reader);
            drop(writer);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    /// Admission meters binary clients identically to JSON ones:
    /// budgets land as structured throttles on the binary wire.
    #[test]
    fn admission_meters_binary_clients_identically() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let registry = demo::demo_locked_registry(&spec, 2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig {
            batch: BatchConfig::default(),
            admission: AdmissionConfig {
                query_budget: 5,
                ..AdmissionConfig::default()
            },
        };
        let row = |i: u16| -> Vec<u16> {
            (0..spec.n_features)
                .map(|f| ((usize::from(i) + f) % spec.m_levels) as u16)
                .collect()
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));

            let mut bin = BinClient::connect(addr);
            // Admission is applied on the read side in request order:
            // the first 5 pipelined requests are admitted, the rest
            // are throttled — exactly the serial JSON behavior.
            let mut burst = Vec::new();
            for i in 0..8u16 {
                burst.extend(wire::classify_frame(u64::from(i), &row(i), false));
            }
            bin.send(&burst);
            let responses = bin.recv_n(8);
            let admitted = responses.values().filter(|r| r.class.is_some()).count();
            let throttles: Vec<_> = responses.values().filter(|r| r.throttled).collect();
            assert_eq!(admitted, 5);
            assert_eq!(throttles.len(), 3);
            for t in throttles {
                assert!(t.error.as_ref().unwrap().contains("budget"));
            }

            drop(bin);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.throttled, 3);
        });
    }

    /// A stream reader that records every byte it hands out — the raw
    /// wire capture the telemetry differential test compares.
    struct Recorder {
        inner: TcpStream,
        captured: Vec<u8>,
    }

    impl Read for Recorder {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.inner.read(buf)?;
            self.captured.extend_from_slice(&buf[..n]);
            Ok(n)
        }
    }

    /// Runs a fixed traffic script (classify with scores, search, a
    /// shape error, a malformed line, info — strictly serial so the
    /// response byte order is deterministic) against one server and
    /// returns the raw response bytes per wire.
    fn telemetry_traffic(core: CoreKind, metrics: Option<&ServeMetrics>) -> (Vec<u8>, Vec<u8>) {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let levels =
            |i: u16| -> Vec<u16> { (0..16).map(|f| ((usize::from(i) + f) % 8) as u16).collect() };

        std::thread::scope(|s| {
            let server = s.spawn(|| {
                serve_with_core_metrics(
                    core,
                    listener,
                    &session,
                    &BatchConfig::default(),
                    &shutdown,
                    metrics,
                )
            });

            // JSON wire.
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(Recorder {
                inner: stream.try_clone().unwrap(),
                captured: Vec::new(),
            });
            let mut writer = stream;
            let mut script = Vec::new();
            for i in 0..4u16 {
                script.push(protocol::request_line(u64::from(i) + 1, &levels(i), true));
            }
            for i in 0..2u16 {
                script.push(protocol::search_request_line(
                    u64::from(i) + 10,
                    &levels(i),
                    3,
                ));
            }
            script.push(protocol::request_line(20, &[1, 2], false));
            script.push("{oops\n".to_string());
            script.push(protocol::info_request_line(21));
            let mut line = String::new();
            for req in &script {
                writer.write_all(req.as_bytes()).unwrap();
                line.clear();
                reader.read_line(&mut line).unwrap();
            }
            drop(writer);
            let json_bytes = reader.into_inner().captured;

            // Binary wire.
            let stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(Recorder {
                inner: stream.try_clone().unwrap(),
                captured: Vec::new(),
            });
            let mut writer = stream;
            let mut frames = Vec::new();
            for i in 0..4u16 {
                frames.push(wire::classify_frame(u64::from(i) + 1, &levels(i), true));
            }
            for i in 0..2u16 {
                frames.push(wire::search_frame(u64::from(i) + 10, &levels(i), 3));
            }
            frames.push(wire::info_frame(21));
            for frame in &frames {
                writer.write_all(frame).unwrap();
                let _ = wire::read_frame(&mut reader).unwrap();
            }
            drop(writer);
            let bin_bytes = reader.into_inner().captured;

            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
            (json_bytes, bin_bytes)
        })
    }

    /// Telemetry is observational only: with metrics on, every response
    /// byte on both wires is identical to a metrics-off server, on both
    /// cores — and the plane actually observed the run.
    #[test]
    fn telemetry_on_responses_are_byte_identical_to_off() {
        for core in [CoreKind::Threaded, CoreKind::Event] {
            let off = telemetry_traffic(core, None);
            let metrics = ServeMetrics::new();
            let on = telemetry_traffic(core, Some(&metrics));
            assert_eq!(off.0, on.0, "JSON wire bytes differ on {core:?}");
            assert_eq!(off.1, on.1, "binary wire bytes differ on {core:?}");
            // 4 classify + 2 search + shape error + malformed + info
            // per wire; every dispatch and kernel call timed.
            assert_eq!(metrics.requests_json.get(), 9);
            assert_eq!(metrics.requests_binary.get(), 7);
            assert!(metrics.dispatch_us.snapshot().count() >= 16);
            assert!(metrics.execute_classify_us.snapshot().count() >= 1);
            assert!(metrics.execute_search_us.snapshot().count() >= 1);
            assert!(metrics.queue_wait_us.snapshot().count() >= 12);
            assert_eq!(metrics.conns_opened.get(), 2);
            assert_eq!(metrics.conns_closed.get(), 2);
            assert_eq!(metrics.active_connections.get(), 0);
        }
    }

    /// The registry server exposes the metrics plane three ways: the
    /// `{"metrics":true}` admin request (one JSON line), the Prometheus
    /// scrape listener, and the extended stats report — and a
    /// metrics-off server answers the admin request with a structured
    /// error instead.
    #[test]
    fn metrics_admin_and_scrape_expose_the_catalog() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let registry = demo::demo_locked_registry(&spec, 2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let scrape_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let scrape_addr = scrape_listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig::default();
        let metrics = ServeMetrics::new();
        let row = |i: u16| -> Vec<u16> {
            (0..spec.n_features)
                .map(|f| ((usize::from(i) + f) % spec.m_levels) as u16)
                .collect()
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| {
                serve_registry_with_core_metrics(
                    CoreKind::default(),
                    listener,
                    &registry,
                    &config,
                    &shutdown,
                    Some(&metrics),
                )
            });
            let scraper =
                s.spawn(|| serve_scrapes(&scrape_listener, &metrics, Some(&registry), &shutdown));

            let mut client = Client::connect(addr);
            for i in 0..4u16 {
                let resp = client.roundtrip(&protocol::request_line(u64::from(i), &row(i), false));
                assert!(resp.class.is_some());
            }

            // The stats report carries the new uptime / per-wire /
            // connection fields (the stats request itself is counted
            // before it is answered).
            let resp = client.roundtrip(&protocol::stats_request_line(50));
            let stats = resp.stats.unwrap();
            assert_eq!(stats.requests_json, 5);
            assert_eq!(stats.requests_binary, 0);
            assert_eq!(stats.active_connections, 1);
            assert!(stats.uptime_secs < 3600);

            // `{"metrics":true}` answers the full JSON summary in one
            // line (not a ClassifyResponse — read it raw).
            client
                .writer
                .write_all(protocol::metrics_request_line(60).as_bytes())
                .unwrap();
            client.line.clear();
            client.reader.read_line(&mut client.line).unwrap();
            let line = client.line.clone();
            assert!(
                line.starts_with("{\"id\":60,\"metrics\":{\"uptime_secs\":"),
                "{line}"
            );
            for key in [
                "\"requests\":{\"json\":6,\"binary\":0}",
                "\"active_connections\":1",
                "\"stages_us\":{",
                "\"queue_wait\":{\"count\":",
                "\"throttled\":{\"budget\":0",
                "\"swaps\":{\"reload\":0,\"rekey\":0,\"rollback\":0}",
                "\"generation\":1",
                "\"vault\":{\"reads\":",
            ] {
                assert!(line.contains(key), "missing `{key}` in:\n{line}");
            }

            // The scrape listener answers Prometheus text format with
            // the same counters.
            let mut scrape = TcpStream::connect(scrape_addr).unwrap();
            scrape
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
                .unwrap();
            let mut payload = String::new();
            scrape.read_to_string(&mut payload).unwrap();
            assert!(payload.starts_with("HTTP/1.1 200 OK"), "{payload}");
            for series in [
                "hdc_requests_total{wire=\"json\"} 6",
                "hdc_stage_dispatch_us_count 6",
                "hdc_active_connections 1",
                "hdc_generation 1",
                "hdc_vault_reads",
                "hdc_hardened 0",
                "hdc_throttled_total{reason=\"budget\"} 0",
            ] {
                assert!(
                    payload.contains(series),
                    "missing `{series}` in:\n{payload}"
                );
            }

            drop(client);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
            scraper.join().unwrap().unwrap();
        });

        // Metrics off: the admin request degrades to a structured error.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));
            let mut client = Client::connect(addr);
            let resp = client.roundtrip(&protocol::metrics_request_line(1));
            assert!(resp.error.unwrap().contains("not enabled"));
            drop(client);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    /// Serves the same locked demo model hardened and unhardened:
    /// classify response bytes are identical (constant-time encoding
    /// changes *when* work happens, never *what* comes out), and only
    /// the hardened server reports the flag through `info`, `stats` and
    /// the `hdc_hardened` gauge.
    #[test]
    fn hardened_server_answers_match_unhardened_and_report_the_flag() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let config = RegistryServeConfig::default();
        let row = |i: u16| -> Vec<u16> {
            (0..spec.n_features)
                .map(|f| ((usize::from(i) + f) % spec.m_levels) as u16)
                .collect()
        };

        let mut transcripts: Vec<Vec<String>> = Vec::new();
        for hardened in [false, true] {
            let registry = if hardened {
                demo::demo_hardened_registry(&spec, 2)
            } else {
                demo::demo_locked_registry(&spec, 2)
            };
            let metrics = ServeMetrics::new();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let shutdown = AtomicBool::new(false);
            std::thread::scope(|s| {
                let server = s.spawn(|| {
                    serve_registry_with_core_metrics(
                        CoreKind::default(),
                        listener,
                        &registry,
                        &config,
                        &shutdown,
                        Some(&metrics),
                    )
                });
                let mut client = Client::connect(addr);

                // Same traffic against both servers; keep the raw lines.
                let mut lines = Vec::new();
                for i in 0..6u16 {
                    let request = protocol::request_line(u64::from(i), &row(i), i % 2 == 0);
                    client.writer.write_all(request.as_bytes()).unwrap();
                    client.line.clear();
                    client.reader.read_line(&mut client.line).unwrap();
                    lines.push(client.line.clone());
                }
                transcripts.push(lines);

                // The flag is visible on every admin surface.
                let info = client
                    .roundtrip(&protocol::info_request_line(90))
                    .info
                    .unwrap();
                assert_eq!(info.hardened, hardened, "info.hardened");
                let stats = client
                    .roundtrip(&protocol::stats_request_line(91))
                    .stats
                    .unwrap();
                assert_eq!(stats.hardened, hardened, "stats.hardened");
                assert!(stats.locked);
                let scrape = metrics.render_prometheus(Some(&registry));
                let want = format!("hdc_hardened {}", i32::from(hardened));
                assert!(scrape.contains(&want), "missing `{want}` in:\n{scrape}");

                drop(client);
                shutdown.store(true, Ordering::SeqCst);
                server.join().unwrap().unwrap();
            });
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "hardened classify responses must be byte-identical to unhardened"
        );
    }
}
