//! # hdc-serve — a request-batching inference server for HDC models
//!
//! The serving layer the ROADMAP calls for: a dependency-free
//! `std::net` TCP front end over the fused
//! [`ClassifySession`](hdc_model::ClassifySession) pipeline, with hot
//! model swaps and admission control layered on top.
//!
//! * **Protocol** ([`protocol`]) — one JSON object per line in, one per
//!   line out; scriptable with `nc` and parseable by the vendored
//!   `serde_json` stand-in. Carries classify, `info`, admin
//!   (`reload` / `rekey` / `stats`) and structured throttle responses.
//! * **Batching** ([`batcher`]) — requests from all connections funnel
//!   into one queue; workers pop up to `max_batch` jobs (or whatever
//!   arrived within `max_wait`) and answer them with a *single* fused
//!   `encode_batch → search_batch` call, so heavy concurrent traffic
//!   runs at batch-kernel throughput.
//! * **Server** ([`server`]) — scoped-thread accept loop, per-
//!   connection handlers, graceful drain on shutdown. No async runtime,
//!   no external crates. [`server::serve`] drives one fixed session;
//!   [`server::serve_registry`] drives a
//!   [`ModelRegistry`](hdc_store::ModelRegistry), so snapshots can be
//!   hot-reloaded and locked models re-keyed *behind* the running
//!   server — in-flight traffic finishes on the generation its batch
//!   grabbed, and the `info` response carries the generation id +
//!   snapshot checksum so clients can detect the swap.
//! * **Admission** ([`admission`]) — per-connection query budgets
//!   (the attack crate's [`QueryBudget`](hdc_attack::QueryBudget)
//!   semantics), token-bucket rate limits and lock-probe
//!   feature-sweep detection, answered with structured
//!   `"throttled":true` errors.
//! * **Load generator** ([`loadgen`]) — closed-loop clients reporting
//!   requests/sec and latency percentiles
//!   ([`hdc_model::LatencyStats`]); the numbers behind
//!   `BENCH_search.json`'s serving section.
//!
//! ## Quickstart
//!
//! ```
//! use hdc_serve::{demo, loadgen, server, BatchConfig, LoadgenConfig};
//! use std::net::TcpListener;
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! let model = demo::demo_model(&demo::DemoSpec {
//!     dim: 512,
//!     train_size: 64,
//!     ..Default::default()
//! });
//! let session = model.session();
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! let addr = listener.local_addr()?;
//! let shutdown = AtomicBool::new(false);
//!
//! std::thread::scope(|s| -> std::io::Result<()> {
//!     let server = s.spawn(|| {
//!         server::serve(listener, &session, &BatchConfig::default(), &shutdown)
//!     });
//!     let report = loadgen::run(addr, 16, 8, &LoadgenConfig {
//!         connections: 2,
//!         requests_per_connection: 5,
//!         seed: 1,
//!     })?;
//!     assert_eq!(report.total_requests, 10);
//!     shutdown.store(true, Ordering::SeqCst);
//!     server.join().expect("server thread")?;
//!     Ok(())
//! })?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! See `examples/hot_reload.rs` for the registry-backed variant
//! (snapshot reload, live rekey, admission budgets).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod batcher;
pub mod demo;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use admission::{AdmissionConfig, ConnectionAdmission, ThrottleReason};
pub use batcher::{BatchConfig, BatchQueue};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use protocol::{
    AdminRequest, ClassifyRequest, ClassifyResponse, ServerInfo, StatsReport, SwapInfo,
};
pub use server::{serve, serve_registry, RegistryServeConfig, ServeStats};

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_store::{KeySegment, ModelRegistry, ModelSnapshot, RekeySource};
    use hdlock::{EncodingKey, LockedEncoder};
    use hypervec::HvRng;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Blocking line-oriented test client.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
        line: String,
    }

    impl Client {
        fn connect(addr: std::net::SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
                line: String::new(),
            }
        }

        fn roundtrip(&mut self, request: &str) -> ClassifyResponse {
            self.writer.write_all(request.as_bytes()).unwrap();
            self.line.clear();
            self.reader.read_line(&mut self.line).unwrap();
            protocol::parse_response(&self.line).unwrap()
        }
    }

    /// Full wire round trip: responses match direct session calls,
    /// protocol errors are reported per request, shutdown is graceful.
    #[test]
    fn served_answers_match_direct_session() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &BatchConfig::default(), &shutdown));

            let mut client = Client::connect(addr);

            // A valid classify request answers with the session's class.
            let levels: Vec<u16> = (0..16).map(|i| (i % 8) as u16).collect();
            let resp = client.roundtrip(&protocol::request_line(1, &levels, false));
            assert_eq!(resp.id, 1);
            assert_eq!(resp.class, Some(session.classify(&levels)));

            // Scores on demand, bit-equal to the session's.
            let resp = client.roundtrip(&protocol::request_line(2, &levels, true));
            let refs: Vec<&[u16]> = vec![&levels];
            let want = session.scores_batch(&refs);
            let got = resp.scores.unwrap();
            assert_eq!(got.len(), session.n_classes());
            for (g, w) in got.iter().zip(want.scores(0)) {
                assert_eq!(g.to_bits(), w.to_bits());
            }

            // Wrong width and out-of-range levels are per-request errors.
            let resp = client.roundtrip(&protocol::request_line(3, &[1, 2], false));
            assert_eq!(resp.id, 3);
            assert!(resp.error.unwrap().contains("model expects 16"));
            assert!(!resp.throttled);

            let resp = client.roundtrip(&protocol::request_line(4, &[200u16; 16], false));
            assert!(resp.error.unwrap().contains("out of range"));

            // Info reports the model shape and the active kernel backend;
            // a non-registry server is always generation 0.
            let resp = client.roundtrip(&protocol::info_request_line(9));
            assert_eq!(resp.id, 9);
            let info = resp.info.unwrap();
            assert_eq!(info.backend, session.kernel_backend());
            assert_eq!(info.dim, session.dim());
            assert_eq!(info.features, session.n_features());
            assert_eq!(info.levels, session.m_levels());
            assert_eq!(info.classes, session.n_classes());
            assert_eq!(info.generation, 0);
            assert_eq!(info.checksum, protocol::checksum_hex(0));

            // Admin requests need the registry server.
            let resp = client.roundtrip(&protocol::stats_request_line(10));
            assert!(resp.error.unwrap().contains("registry"));

            // Malformed JSON does not kill the connection.
            let resp = client.roundtrip("{oops\n");
            assert!(resp.error.is_some());

            // The connection still works afterwards.
            let resp = client.roundtrip(&protocol::request_line(5, &levels, false));
            assert_eq!(resp.id, 5);

            drop(client);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.connections, 1);
            assert_eq!(stats.requests, 8);
            // Requests 3, 4, the info request, the stats request and the
            // malformed line were all answered without reaching the
            // batch workers.
            assert_eq!(stats.classified, 3);
            assert_eq!(stats.throttled, 0);
        });
    }

    /// Concurrent loadgen traffic is batched and every response checks
    /// out against the direct session path.
    #[test]
    fn loadgen_roundtrip_with_batching() {
        let model = demo::demo_model(&demo::DemoSpec {
            dim: 512,
            train_size: 128,
            ..Default::default()
        });
        let session = model.session();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = BatchConfig {
            max_batch: 8,
            max_wait: std::time::Duration::from_micros(200),
            workers: 2,
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| serve(listener, &session, &config, &shutdown));
            let report = loadgen::run(
                addr,
                session.n_features(),
                session.m_levels(),
                &LoadgenConfig {
                    connections: 8,
                    requests_per_connection: 50,
                    seed: 7,
                },
            )
            .unwrap();
            assert_eq!(report.total_requests, 400);
            assert_eq!(report.errors, 0);
            assert!(report.requests_per_sec > 0.0);
            assert_eq!(report.latency.count, 400);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.requests, 400);
            assert_eq!(stats.classified, 400);
            assert_eq!(stats.connections, 8);
        });
    }

    /// Admission: a client exceeding its query budget gets structured
    /// throttle errors while a neighbor connection is untouched.
    #[test]
    fn admission_throttles_one_client_not_the_other() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let registry = demo::demo_locked_registry(&spec, 2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig {
            batch: BatchConfig::default(),
            admission: AdmissionConfig {
                query_budget: 5,
                ..AdmissionConfig::default()
            },
        };

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));

            let mut greedy = Client::connect(addr);
            let mut honest = Client::connect(addr);
            let row = |i: u16| -> Vec<u16> {
                (0..spec.n_features)
                    .map(|f| ((usize::from(i) + f) % spec.m_levels) as u16)
                    .collect()
            };

            // The greedy client gets its 5 budgeted answers…
            for i in 0..5u16 {
                let resp = greedy.roundtrip(&protocol::request_line(u64::from(i), &row(i), false));
                assert!(resp.class.is_some(), "within budget: {resp:?}");
            }
            // …then structured throttles, not hard failures.
            for i in 5..8u16 {
                let resp = greedy.roundtrip(&protocol::request_line(u64::from(i), &row(i), false));
                assert!(resp.throttled, "over budget: {resp:?}");
                assert!(resp.error.unwrap().contains("budget"));
            }

            // The honest neighbor is unaffected — budgets are per
            // connection, so its own (within-budget) requests all land
            // even though the greedy client just burned through its
            // allowance.
            for i in 0..5u16 {
                let resp =
                    honest.roundtrip(&protocol::request_line(u64::from(100 + i), &row(i), false));
                assert!(resp.class.is_some(), "neighbor request {i}: {resp:?}");
            }

            // Stats surface the throttle count.
            let resp = honest.roundtrip(&protocol::stats_request_line(999));
            let stats = resp.stats.unwrap();
            assert_eq!(stats.throttled, 3);
            assert!(stats.locked);
            assert_eq!(stats.generation, 1);

            drop(greedy);
            drop(honest);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.throttled, 3);
            assert_eq!(stats.connections, 2);
        });
    }

    /// The rekey acceptance run: a live rekey lands under closed-loop
    /// load with zero failed requests, post-swap responses are
    /// bit-identical to a cold-started server on the new key, and the
    /// old generation's vault is destroyed.
    #[test]
    fn live_rekey_under_load_is_lossless_and_bit_identical() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let (model, train) = demo::demo_locked_model(&spec, 2);
        let snapshot = ModelSnapshot::from_locked_model(&model);
        let key = KeySegment::from_locked_encoder(model.encoder()).unwrap();
        let registry = ModelRegistry::from_snapshot(snapshot, Some(&key))
            .unwrap()
            .with_rekey_source(RekeySource {
                config: demo::demo_config(&spec),
                train: train.clone(),
            });

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig::default();
        const REKEY_SEED: u64 = 20_220_711;

        let old_generation = registry.current();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));

            // Closed-loop load in the background…
            let load = s.spawn(|| {
                loadgen::run(
                    addr,
                    spec.n_features,
                    spec.m_levels,
                    &LoadgenConfig {
                        connections: 4,
                        requests_per_connection: 120,
                        seed: 11,
                    },
                )
                .unwrap()
            });

            // …and a rekey right through the middle of it.
            let mut admin = Client::connect(addr);
            let resp = admin.roundtrip(&protocol::rekey_request_line(1, REKEY_SEED));
            let swapped = resp.swapped.expect("rekey swaps");
            assert_eq!(swapped.generation, 2);

            // Zero failed/dropped requests across the swap.
            let report = load.join().unwrap();
            assert_eq!(report.total_requests, 480);
            assert_eq!(report.errors, 0, "requests failed across the rekey");

            // The info response reflects the swap.
            let resp = admin.roundtrip(&protocol::info_request_line(2));
            let info = resp.info.unwrap();
            assert_eq!(info.generation, 2);
            assert_eq!(info.checksum, swapped.checksum);

            // Post-swap responses are bit-identical to a cold-started
            // model under the same key seed.
            let mut rng = HvRng::from_seed(REKEY_SEED);
            let cold_key = EncodingKey::random(
                &mut rng,
                spec.n_features,
                2,
                model.encoder().pool().len(),
                spec.dim,
            )
            .unwrap();
            let cold_enc = LockedEncoder::from_parts(
                model.encoder().pool().clone(),
                model.encoder().values().clone(),
                cold_key,
            )
            .unwrap();
            let cold =
                hdc_model::HdcModel::fit_with_encoder(&demo::demo_config(&spec), cold_enc, &train)
                    .unwrap();
            let cold_session = cold.session();
            for i in 0..12u16 {
                let row: Vec<u16> = (0..spec.n_features)
                    .map(|f| ((usize::from(i) * 3 + f) % spec.m_levels) as u16)
                    .collect();
                let resp = admin.roundtrip(&protocol::request_line(u64::from(10 + i), &row, true));
                assert_eq!(resp.class, Some(cold_session.classify(&row)), "row {i}");
                let refs: Vec<&[u16]> = vec![&row];
                let want = cold_session.scores_batch(&refs);
                for (g, w) in resp.scores.unwrap().iter().zip(want.scores(0)) {
                    assert_eq!(g.to_bits(), w.to_bits(), "row {i}");
                }
            }

            // The old generation's vault is destroyed: reads frozen.
            let old_vault = old_generation.session().encoder().vault().unwrap();
            assert!(!old_vault.is_sealed());
            assert!(old_vault.with_key(|_| ()).is_err());

            drop(admin);
            shutdown.store(true, Ordering::SeqCst);
            let stats = server.join().unwrap().unwrap();
            assert_eq!(stats.throttled, 0);
            assert!(stats.requests >= 480);
        });
    }

    /// Hot reload through the wire: save a snapshot, `reload` it, and
    /// watch the generation + checksum change in `info`.
    #[test]
    fn wire_reload_swaps_generations() {
        let spec = demo::DemoSpec {
            dim: 256,
            train_size: 64,
            ..Default::default()
        };
        let registry = demo::demo_locked_registry(&spec, 2);
        let boot_checksum = registry.current().checksum();

        // A replacement *standard* model, snapshotted to disk.
        let dir = std::env::temp_dir().join("hdc_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("replacement.hdsn");
        let replacement = demo::demo_model(&demo::DemoSpec { seed: 999, ..spec });
        ModelSnapshot::from_standard_model(&replacement)
            .save(&snap_path)
            .unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = RegistryServeConfig::default();

        std::thread::scope(|s| {
            let server = s.spawn(|| serve_registry(listener, &registry, &config, &shutdown));
            let mut client = Client::connect(addr);

            let info = client
                .roundtrip(&protocol::info_request_line(1))
                .info
                .unwrap();
            assert_eq!(info.generation, 1);
            assert_eq!(info.checksum, protocol::checksum_hex(boot_checksum));

            // Reload from the file; no key segment (standard model).
            let resp = client.roundtrip(&protocol::reload_request_line(
                2,
                snap_path.to_str().unwrap(),
                None,
            ));
            let swapped = resp.swapped.expect("reload swaps");
            assert_eq!(swapped.generation, 2);
            assert_ne!(swapped.checksum, info.checksum);

            let info = client
                .roundtrip(&protocol::info_request_line(3))
                .info
                .unwrap();
            assert_eq!(info.generation, 2);
            assert_eq!(info.checksum, swapped.checksum);

            // Served answers now come from the replacement model.
            let row: Vec<u16> = (0..spec.n_features)
                .map(|f| (f % spec.m_levels) as u16)
                .collect();
            let resp = client.roundtrip(&protocol::request_line(4, &row, false));
            assert_eq!(resp.class, Some(replacement.session().classify(&row)));

            // Reloading a missing file fails cleanly, serving continues.
            let resp = client.roundtrip(&protocol::reload_request_line(
                5,
                dir.join("nope.hdsn").to_str().unwrap(),
                None,
            ));
            assert!(resp.error.unwrap().contains("reload failed"));
            let resp = client.roundtrip(&protocol::request_line(6, &row, false));
            assert!(resp.class.is_some());

            drop(client);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
        let _ = std::fs::remove_file(&snap_path);
    }
}
