//! Standalone classify server over a synthetic demo model, served from
//! a hot-swappable model registry.
//!
//! Usage: `hdc_serve [--addr HOST:PORT] [--dim D] [--features N]
//! [--levels M] [--classes C] [--batch B] [--wait-us T] [--workers W]
//! [--pipeline P] [--duration SECS] [--locked L] [--hardened]
//! [--budget Q] [--rate R] [--burst B] [--sweep S]
//! [--max-connections C] [--core event|threaded]
//! [--metrics-addr HOST:PORT]`
//!
//! `--locked L` serves an HDLock-locked demo model with key depth `L`
//! (enabling the `{"rekey":…}` admin request); the default is the
//! standard demo model. `--hardened` (requires `--locked`) serves the
//! locked model in constant-time hardened mode: every encode performs
//! the same vault and bound-pair work regardless of input, and pruned
//! top-k search falls back to the exact scan — the timing-oracle
//! defense described in `SECURITY.md`. The flag is surfaced in
//! `{"info":true}` / `{"stats":true}` responses and the `hdc_hardened`
//! metrics gauge. `--budget`/`--rate`/`--burst`/`--sweep` arm the
//! per-connection admission controller. `--pipeline P` caps the
//! per-connection in-flight window (pipelined requests beyond it get a
//! structured overload error). Both wire formats (line-JSON and binary
//! frames) are always served — each connection picks its own by what
//! it sends first. `--duration 0` (the default) serves until the
//! process is killed.
//!
//! `--core` picks the connection core: `event` (the epoll loop —
//! Linux default, 10k+ concurrent connections) or `threaded` (two
//! blocking threads per connection; the only core off Linux).
//! `--max-connections C` caps concurrent connections on the event
//! core — accepts beyond it are answered with a structured
//! `"overloaded"` error instead of a silent close. The process file
//! descriptor limit is raised (best effort) to fit the cap at startup.
//!
//! `--metrics-addr HOST:PORT` turns on the telemetry plane: every
//! request stage records into the `hdc_serve::metrics` catalog, swap
//! events log structured lines, a Prometheus text-format scrape
//! listener answers on the given address, and the `{"metrics":true}`
//! admin request answers in-band. Without the flag telemetry is fully
//! off (no clocks are read; responses are byte-identical either way).

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use hdc_model::ClassifySession;
use hdc_serve::demo::{self, DemoSpec};
use hdc_serve::{
    server, AdmissionConfig, BatchConfig, CoreKind, RegistryServeConfig, ServeMetrics,
};
use hdc_store::{ModelRegistry, ModelSnapshot};

struct Options {
    addr: String,
    spec: DemoSpec,
    batch: BatchConfig,
    admission: AdmissionConfig,
    locked_layers: usize,
    hardened: bool,
    duration_secs: u64,
    core: CoreKind,
    metrics_addr: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7878".to_owned(),
            spec: DemoSpec::default(),
            batch: BatchConfig::default(),
            admission: AdmissionConfig::default(),
            locked_layers: 0,
            hardened: false,
            duration_secs: 0,
            core: CoreKind::default(),
            metrics_addr: None,
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(i),
            "--dim" => opts.spec.dim = value(i).parse().expect("--dim needs an integer"),
            "--features" => {
                opts.spec.n_features = value(i).parse().expect("--features needs an integer")
            }
            "--levels" => opts.spec.m_levels = value(i).parse().expect("--levels needs an integer"),
            "--classes" => {
                opts.spec.n_classes = value(i).parse().expect("--classes needs an integer")
            }
            "--batch" => opts.batch.max_batch = value(i).parse().expect("--batch needs an integer"),
            "--wait-us" => {
                opts.batch.max_wait =
                    Duration::from_micros(value(i).parse().expect("--wait-us needs an integer"))
            }
            "--workers" => {
                opts.batch.workers = value(i).parse().expect("--workers needs an integer")
            }
            "--pipeline" => {
                opts.batch.pipeline_window = value(i).parse().expect("--pipeline needs an integer")
            }
            "--duration" => {
                opts.duration_secs = value(i).parse().expect("--duration needs an integer")
            }
            "--locked" => {
                opts.locked_layers = value(i).parse().expect("--locked needs a layer count")
            }
            // Boolean flag: consumes one argument, not two.
            "--hardened" => {
                opts.hardened = true;
                i += 1;
                continue;
            }
            "--budget" => {
                opts.admission.query_budget = value(i).parse().expect("--budget needs an integer")
            }
            "--rate" => {
                opts.admission.rate_per_sec = value(i).parse().expect("--rate needs a number")
            }
            "--burst" => opts.admission.burst = value(i).parse().expect("--burst needs an integer"),
            "--sweep" => {
                opts.admission.sweep_budget = value(i).parse().expect("--sweep needs an integer")
            }
            "--max-connections" => {
                opts.batch.max_connections = value(i)
                    .parse()
                    .expect("--max-connections needs an integer")
            }
            "--core" => {
                opts.core = match value(i).as_str() {
                    "event" => CoreKind::Event,
                    "threaded" => CoreKind::Threaded,
                    other => panic!("--core needs `event` or `threaded`, got '{other}'"),
                }
            }
            "--metrics-addr" => opts.metrics_addr = Some(value(i)),
            other => panic!(
                "unknown argument '{other}'; supported: --addr --dim --features --levels \
                 --classes --batch --wait-us --workers --pipeline --duration --locked \
                 --hardened --budget --rate --burst --sweep --max-connections --core \
                 --metrics-addr"
            ),
        }
        i += 2;
    }
    opts
}

fn main() -> std::io::Result<()> {
    let opts = parse_options();
    assert!(
        !opts.hardened || opts.locked_layers > 0,
        "--hardened needs --locked L: hardening is a property of the HDLock locked encoder"
    );
    println!(
        "training demo model (N = {}, C = {}, D = {}, M = {}, {}) …",
        opts.spec.n_features,
        opts.spec.n_classes,
        opts.spec.dim,
        opts.spec.m_levels,
        if opts.hardened {
            format!("hardened locked L = {}", opts.locked_layers)
        } else if opts.locked_layers > 0 {
            format!("locked L = {}", opts.locked_layers)
        } else {
            "standard".to_owned()
        }
    );
    let registry: ModelRegistry = if opts.hardened {
        demo::demo_hardened_registry(&opts.spec, opts.locked_layers)
    } else if opts.locked_layers > 0 {
        demo::demo_locked_registry(&opts.spec, opts.locked_layers)
    } else {
        let model = demo::demo_model(&opts.spec);
        ModelRegistry::from_snapshot(ModelSnapshot::from_standard_model(&model), None)
            .expect("demo snapshot is self-consistent")
    };
    let boot = registry.current();
    let listener = TcpListener::bind(&opts.addr)?;
    match hdc_serve::epoll::raise_nofile_limit(opts.batch.max_connections as u64 * 2 + 64) {
        Some((soft, hard)) => println!(
            "file descriptor limit: soft {soft} / hard {hard} \
             (fits {} connections)",
            opts.batch.max_connections
        ),
        None => println!("file descriptor limit: left unchanged (raise unsupported or denied)"),
    }
    println!(
        "serving on {} ({:?} core, batch ≤ {}, wait ≤ {:?}, {} workers, pipeline window {}, \
         ≤ {} connections, kernel backend: {}, generation {}, checksum {:016x}); \
         protocols: line-JSON \
         (one {{\"id\":…,\"levels\":[…]}} per line; {{\"id\":…,\"info\":true}}, \
         {{\"id\":…,\"stats\":true}}, {{\"id\":…,\"reload\":{{…}}}}, \
         {{\"id\":…,\"rekey\":SEED}}) and binary frames (first byte 0xB1; see \
         hdc_serve::wire), sniffed per connection",
        listener.local_addr()?,
        opts.core,
        opts.batch.max_batch,
        opts.batch.max_wait,
        opts.batch.workers,
        opts.batch.pipeline_window,
        opts.batch.max_connections,
        boot.session().kernel_backend(),
        boot.id(),
        boot.checksum()
    );
    drop(boot);

    let config = RegistryServeConfig {
        batch: opts.batch,
        admission: opts.admission,
    };
    let metrics = opts.metrics_addr.as_ref().map(|_| ServeMetrics::new());
    let scrape_listener = match &opts.metrics_addr {
        Some(addr) => {
            let scrape = TcpListener::bind(addr)?;
            println!(
                "metrics: Prometheus scrapes on http://{}/metrics, \
                 {{\"metrics\":true}} admin enabled",
                scrape.local_addr()?
            );
            Some(scrape)
        }
        None => None,
    };
    let shutdown = AtomicBool::new(false);
    let stats = std::thread::scope(|s| {
        let server = s.spawn(|| {
            server::serve_registry_with_core_metrics(
                opts.core,
                listener,
                &registry,
                &config,
                &shutdown,
                metrics.as_ref(),
            )
        });
        if let (Some(scrape), Some(metrics)) = (&scrape_listener, &metrics) {
            s.spawn(|| {
                if let Err(e) =
                    hdc_serve::serve_scrapes(scrape, metrics, Some(&registry), &shutdown)
                {
                    eprintln!("metrics listener failed: {e}");
                }
            });
        }
        if opts.duration_secs > 0 {
            std::thread::sleep(Duration::from_secs(opts.duration_secs));
            shutdown.store(true, Ordering::SeqCst);
        }
        server.join().expect("server thread")
    })?;
    println!(
        "served {} requests over {} connections ({} throttled); final generation {}",
        stats.requests,
        stats.connections,
        stats.throttled,
        registry.current().id()
    );
    Ok(())
}
