//! Standalone classify server over a synthetic demo model.
//!
//! Usage: `hdc_serve [--addr HOST:PORT] [--dim D] [--features N]
//! [--levels M] [--classes C] [--batch B] [--wait-us T]
//! [--workers W] [--duration SECS]`
//!
//! `--duration 0` (the default) serves until the process is killed.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use hdc_serve::demo::{demo_model, DemoSpec};
use hdc_serve::{server, BatchConfig};

struct Options {
    addr: String,
    spec: DemoSpec,
    batch: BatchConfig,
    duration_secs: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7878".to_owned(),
            spec: DemoSpec::default(),
            batch: BatchConfig::default(),
            duration_secs: 0,
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(i),
            "--dim" => opts.spec.dim = value(i).parse().expect("--dim needs an integer"),
            "--features" => {
                opts.spec.n_features = value(i).parse().expect("--features needs an integer")
            }
            "--levels" => opts.spec.m_levels = value(i).parse().expect("--levels needs an integer"),
            "--classes" => {
                opts.spec.n_classes = value(i).parse().expect("--classes needs an integer")
            }
            "--batch" => opts.batch.max_batch = value(i).parse().expect("--batch needs an integer"),
            "--wait-us" => {
                opts.batch.max_wait =
                    Duration::from_micros(value(i).parse().expect("--wait-us needs an integer"))
            }
            "--workers" => {
                opts.batch.workers = value(i).parse().expect("--workers needs an integer")
            }
            "--duration" => {
                opts.duration_secs = value(i).parse().expect("--duration needs an integer")
            }
            other => panic!(
                "unknown argument '{other}'; supported: --addr --dim --features --levels \
                 --classes --batch --wait-us --workers --duration"
            ),
        }
        i += 2;
    }
    opts
}

fn main() -> std::io::Result<()> {
    let opts = parse_options();
    println!(
        "training demo model (N = {}, C = {}, D = {}, M = {}) …",
        opts.spec.n_features, opts.spec.n_classes, opts.spec.dim, opts.spec.m_levels
    );
    let model = demo_model(&opts.spec);
    let session = model.session();
    let listener = TcpListener::bind(&opts.addr)?;
    println!(
        "serving on {} (batch ≤ {}, wait ≤ {:?}, {} workers, kernel backend: {}); \
         protocol: one {{\"id\":…,\"levels\":[…]}} per line \
         ({{\"id\":…,\"info\":true}} reports model shape + backend)",
        listener.local_addr()?,
        opts.batch.max_batch,
        opts.batch.max_wait,
        opts.batch.workers,
        session.kernel_backend()
    );

    let shutdown = AtomicBool::new(false);
    let stats = std::thread::scope(|s| {
        let server = s.spawn(|| server::serve(listener, &session, &opts.batch, &shutdown));
        if opts.duration_secs > 0 {
            std::thread::sleep(Duration::from_secs(opts.duration_secs));
            shutdown.store(true, Ordering::SeqCst);
        }
        server.join().expect("server thread")
    })?;
    println!(
        "served {} requests over {} connections",
        stats.requests, stats.connections
    );
    Ok(())
}
