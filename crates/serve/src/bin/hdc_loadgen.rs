//! Load generator CLI: drives a running `hdc_serve` instance and prints
//! throughput and latency percentiles.
//!
//! Usage: `hdc_loadgen [--addr HOST:PORT] [--features N] [--levels M]
//! [--connections C] [--requests R] [--seed S] [--wire json|binary]
//! [--pipeline P] [--search-k K] [--min-rps X] [--open-loop]
//! [--churn N] [--min-connections C] [--metrics-delta]`
//!
//! `--features` / `--levels` must match the served model. `--wire`
//! picks the protocol (line-JSON by default, length-prefixed binary
//! frames with `binary`); `--pipeline P` keeps `P` requests in flight
//! per connection (1 = serial round trips). `--search-k K` switches
//! every request from top-1 classification to top-`K` similarity
//! search (a response without a match list counts as an error).
//! `--min-rps X` exits non-zero when throughput lands below `X` or any
//! request errors — the CI serving smoke test's assertion.
//!
//! `--open-loop` switches from one-thread-per-connection closed loops
//! to the epoll fan-in client (Linux only): every connection is a
//! nonblocking socket multiplexed from one thread, so `--connections
//! 10000` is practical. `--churn N` (open-loop only) makes each
//! connection disconnect and reconnect every `N` responses, exercising
//! the server's accept path under load. `--min-connections C` exits
//! non-zero unless at least `C` connections were driven — the 10k
//! concurrency smoke assertion.
//!
//! `--metrics-delta` queries the server's telemetry plane (the
//! `{"metrics":true}` admin request) before and after the run and
//! prints server-side request-count deltas and stage latency
//! percentiles next to the client-observed histogram. Needs a server
//! started with `--metrics-addr`; degrades to a notice otherwise.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;

use hdc_serve::{loadgen, protocol, FanInConfig, LoadgenConfig, WireMode};

struct Options {
    addr: String,
    n_features: usize,
    m_levels: usize,
    config: LoadgenConfig,
    min_rps: f64,
    open_loop: bool,
    churn_every: Option<usize>,
    min_connections: usize,
    metrics_delta: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7878".to_owned(),
            n_features: 16,
            m_levels: 8,
            config: LoadgenConfig::default(),
            min_rps: 0.0,
            open_loop: false,
            churn_every: None,
            min_connections: 0,
            metrics_delta: false,
        }
    }
}

/// One `{"metrics":true}` round trip on a throwaway JSON connection.
/// `None` when the server has telemetry off (or is unreachable).
fn fetch_metrics(addr: SocketAddr) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = stream;
    writer
        .write_all(protocol::metrics_request_line(0).as_bytes())
        .ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    line.contains("\"metrics\":{").then_some(line)
}

/// The integer following `"key":` in a metrics JSON line.
fn field_u64(s: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One stage's `{"count":…,"p50":…,…}` summary from a metrics line.
fn stage(s: &str, key: &str) -> Option<[u64; 5]> {
    let obj = &s[s.find(&format!("\"{key}\":{{"))?..];
    Some([
        field_u64(obj, "count")?,
        field_u64(obj, "p50")?,
        field_u64(obj, "p90")?,
        field_u64(obj, "p99")?,
        field_u64(obj, "p999")?,
    ])
}

/// Prints the server-side view of the run: request-count deltas
/// against the pre-run snapshot, then the (cumulative) stage latency
/// percentiles.
fn print_metrics_delta(before: Option<&str>, after: &str) {
    let delta = |key: &str| -> u64 {
        let b = before.and_then(|b| field_u64(b, key)).unwrap_or(0);
        field_u64(after, key).unwrap_or(0).saturating_sub(b)
    };
    println!(
        "  server metrics: +{} json / +{} binary requests, +{} throttled (budget)",
        delta("json"),
        delta("binary"),
        delta("budget"),
    );
    println!("  server stages µs (cumulative since server start):");
    for key in [
        "sniff",
        "dispatch",
        "queue_wait",
        "execute_classify",
        "execute_search",
        "drain",
    ] {
        if let Some([count, p50, p90, p99, p999]) = stage(after, key) {
            println!("    {key:16} count {count}  p50 {p50}  p90 {p90}  p99 {p99}  p999 {p999}");
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(i),
            "--features" => {
                opts.n_features = value(i).parse().expect("--features needs an integer")
            }
            "--levels" => opts.m_levels = value(i).parse().expect("--levels needs an integer"),
            "--connections" => {
                opts.config.connections = value(i).parse().expect("--connections needs an integer")
            }
            "--requests" => {
                opts.config.requests_per_connection =
                    value(i).parse().expect("--requests needs an integer")
            }
            "--seed" => opts.config.seed = value(i).parse().expect("--seed needs an integer"),
            "--wire" => {
                opts.config.wire =
                    WireMode::from_flag(&value(i)).expect("--wire needs `json` or `binary`")
            }
            "--pipeline" => {
                opts.config.pipeline = value(i).parse().expect("--pipeline needs an integer")
            }
            "--search-k" => {
                let k: usize = value(i).parse().expect("--search-k needs an integer");
                assert!(
                    (1..=usize::from(u16::MAX)).contains(&k),
                    "--search-k must be in 1..=65535"
                );
                opts.config.search_k = Some(k);
            }
            "--min-rps" => opts.min_rps = value(i).parse().expect("--min-rps needs a number"),
            "--open-loop" => {
                opts.open_loop = true;
                i += 1;
                continue;
            }
            "--churn" => {
                opts.churn_every = Some(value(i).parse().expect("--churn needs an integer"))
            }
            "--min-connections" => {
                opts.min_connections = value(i)
                    .parse()
                    .expect("--min-connections needs an integer")
            }
            "--metrics-delta" => {
                opts.metrics_delta = true;
                i += 1;
                continue;
            }
            other => panic!(
                "unknown argument '{other}'; supported: --addr --features --levels \
                 --connections --requests --seed --wire --pipeline --search-k --min-rps \
                 --open-loop --churn --min-connections --metrics-delta"
            ),
        }
        i += 2;
    }
    opts
}

fn main() -> std::io::Result<ExitCode> {
    let opts = parse_options();
    let addr = opts
        .addr
        .to_socket_addrs()?
        .next()
        .expect("address resolves");
    let mode = match opts.config.search_k {
        Some(k) => format!("search k={k}"),
        None => "classify".to_owned(),
    };
    println!(
        "driving {} with {} connections × {} {} requests ({} wire, pipeline {}, {}{}) …",
        addr,
        opts.config.connections,
        opts.config.requests_per_connection,
        mode,
        opts.config.wire.name(),
        opts.config.pipeline,
        if opts.open_loop {
            "open-loop fan-in"
        } else {
            "closed loop"
        },
        match opts.churn_every {
            Some(n) => format!(", churn every {n}"),
            None => String::new(),
        }
    );
    let before = if opts.metrics_delta {
        fetch_metrics(addr)
    } else {
        None
    };
    let report = if opts.open_loop {
        loadgen::run_fan_in(
            addr,
            opts.n_features,
            opts.m_levels,
            &FanInConfig {
                connections: opts.config.connections,
                requests_per_connection: opts.config.requests_per_connection,
                pipeline: opts.config.pipeline,
                wire: opts.config.wire,
                seed: opts.config.seed,
                churn_every: opts.churn_every,
                search_k: opts.config.search_k,
            },
        )?
    } else {
        assert!(
            opts.churn_every.is_none(),
            "--churn needs --open-loop (the closed loop never disconnects)"
        );
        loadgen::run(addr, opts.n_features, opts.m_levels, &opts.config)?
    };
    println!(
        "  {:.0} requests/s  ({} ok, {} errors, {:.2} s)",
        report.requests_per_sec, report.total_requests, report.errors, report.elapsed_secs
    );
    println!(
        "  latency µs: p50 {}  p95 {}  p99 {}  max {}  mean {:.0}",
        report.latency.p50_micros,
        report.latency.p95_micros,
        report.latency.p99_micros,
        report.latency.max_micros,
        report.latency.mean_micros
    );
    if opts.metrics_delta {
        match fetch_metrics(addr) {
            Some(after) => print_metrics_delta(before.as_deref(), &after),
            None => println!("  server metrics: unavailable (start hdc_serve with --metrics-addr)"),
        }
    }
    if opts.min_rps > 0.0 && (report.errors > 0 || report.requests_per_sec < opts.min_rps) {
        eprintln!(
            "FAIL: {} errors, {:.0} requests/s (floor {:.0})",
            report.errors, report.requests_per_sec, opts.min_rps
        );
        return Ok(ExitCode::FAILURE);
    }
    if opts.min_connections > 0 && opts.config.connections < opts.min_connections {
        eprintln!(
            "FAIL: drove {} connections (floor {})",
            opts.config.connections, opts.min_connections
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
