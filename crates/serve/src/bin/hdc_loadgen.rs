//! Load generator CLI: drives a running `hdc_serve` instance and prints
//! throughput and latency percentiles.
//!
//! Usage: `hdc_loadgen [--addr HOST:PORT] [--features N] [--levels M]
//! [--connections C] [--requests R] [--seed S] [--wire json|binary]
//! [--pipeline P] [--search-k K] [--min-rps X] [--open-loop]
//! [--churn N] [--min-connections C]`
//!
//! `--features` / `--levels` must match the served model. `--wire`
//! picks the protocol (line-JSON by default, length-prefixed binary
//! frames with `binary`); `--pipeline P` keeps `P` requests in flight
//! per connection (1 = serial round trips). `--search-k K` switches
//! every request from top-1 classification to top-`K` similarity
//! search (a response without a match list counts as an error).
//! `--min-rps X` exits non-zero when throughput lands below `X` or any
//! request errors — the CI serving smoke test's assertion.
//!
//! `--open-loop` switches from one-thread-per-connection closed loops
//! to the epoll fan-in client (Linux only): every connection is a
//! nonblocking socket multiplexed from one thread, so `--connections
//! 10000` is practical. `--churn N` (open-loop only) makes each
//! connection disconnect and reconnect every `N` responses, exercising
//! the server's accept path under load. `--min-connections C` exits
//! non-zero unless at least `C` connections were driven — the 10k
//! concurrency smoke assertion.

use std::net::ToSocketAddrs;
use std::process::ExitCode;

use hdc_serve::{loadgen, FanInConfig, LoadgenConfig, WireMode};

struct Options {
    addr: String,
    n_features: usize,
    m_levels: usize,
    config: LoadgenConfig,
    min_rps: f64,
    open_loop: bool,
    churn_every: Option<usize>,
    min_connections: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7878".to_owned(),
            n_features: 16,
            m_levels: 8,
            config: LoadgenConfig::default(),
            min_rps: 0.0,
            open_loop: false,
            churn_every: None,
            min_connections: 0,
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(i),
            "--features" => {
                opts.n_features = value(i).parse().expect("--features needs an integer")
            }
            "--levels" => opts.m_levels = value(i).parse().expect("--levels needs an integer"),
            "--connections" => {
                opts.config.connections = value(i).parse().expect("--connections needs an integer")
            }
            "--requests" => {
                opts.config.requests_per_connection =
                    value(i).parse().expect("--requests needs an integer")
            }
            "--seed" => opts.config.seed = value(i).parse().expect("--seed needs an integer"),
            "--wire" => {
                opts.config.wire =
                    WireMode::from_flag(&value(i)).expect("--wire needs `json` or `binary`")
            }
            "--pipeline" => {
                opts.config.pipeline = value(i).parse().expect("--pipeline needs an integer")
            }
            "--search-k" => {
                let k: usize = value(i).parse().expect("--search-k needs an integer");
                assert!(
                    (1..=usize::from(u16::MAX)).contains(&k),
                    "--search-k must be in 1..=65535"
                );
                opts.config.search_k = Some(k);
            }
            "--min-rps" => opts.min_rps = value(i).parse().expect("--min-rps needs a number"),
            "--open-loop" => {
                opts.open_loop = true;
                i += 1;
                continue;
            }
            "--churn" => {
                opts.churn_every = Some(value(i).parse().expect("--churn needs an integer"))
            }
            "--min-connections" => {
                opts.min_connections = value(i)
                    .parse()
                    .expect("--min-connections needs an integer")
            }
            other => panic!(
                "unknown argument '{other}'; supported: --addr --features --levels \
                 --connections --requests --seed --wire --pipeline --search-k --min-rps \
                 --open-loop --churn --min-connections"
            ),
        }
        i += 2;
    }
    opts
}

fn main() -> std::io::Result<ExitCode> {
    let opts = parse_options();
    let addr = opts
        .addr
        .to_socket_addrs()?
        .next()
        .expect("address resolves");
    let mode = match opts.config.search_k {
        Some(k) => format!("search k={k}"),
        None => "classify".to_owned(),
    };
    println!(
        "driving {} with {} connections × {} {} requests ({} wire, pipeline {}, {}{}) …",
        addr,
        opts.config.connections,
        opts.config.requests_per_connection,
        mode,
        opts.config.wire.name(),
        opts.config.pipeline,
        if opts.open_loop {
            "open-loop fan-in"
        } else {
            "closed loop"
        },
        match opts.churn_every {
            Some(n) => format!(", churn every {n}"),
            None => String::new(),
        }
    );
    let report = if opts.open_loop {
        loadgen::run_fan_in(
            addr,
            opts.n_features,
            opts.m_levels,
            &FanInConfig {
                connections: opts.config.connections,
                requests_per_connection: opts.config.requests_per_connection,
                pipeline: opts.config.pipeline,
                wire: opts.config.wire,
                seed: opts.config.seed,
                churn_every: opts.churn_every,
                search_k: opts.config.search_k,
            },
        )?
    } else {
        assert!(
            opts.churn_every.is_none(),
            "--churn needs --open-loop (the closed loop never disconnects)"
        );
        loadgen::run(addr, opts.n_features, opts.m_levels, &opts.config)?
    };
    println!(
        "  {:.0} requests/s  ({} ok, {} errors, {:.2} s)",
        report.requests_per_sec, report.total_requests, report.errors, report.elapsed_secs
    );
    println!(
        "  latency µs: p50 {}  p95 {}  p99 {}  max {}  mean {:.0}",
        report.latency.p50_micros,
        report.latency.p95_micros,
        report.latency.p99_micros,
        report.latency.max_micros,
        report.latency.mean_micros
    );
    if opts.min_rps > 0.0 && (report.errors > 0 || report.requests_per_sec < opts.min_rps) {
        eprintln!(
            "FAIL: {} errors, {:.0} requests/s (floor {:.0})",
            report.errors, report.requests_per_sec, opts.min_rps
        );
        return Ok(ExitCode::FAILURE);
    }
    if opts.min_connections > 0 && opts.config.connections < opts.min_connections {
        eprintln!(
            "FAIL: drove {} connections (floor {})",
            opts.config.connections, opts.min_connections
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
