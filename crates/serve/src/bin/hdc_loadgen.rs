//! Load generator CLI: drives a running `hdc_serve` instance and prints
//! throughput and latency percentiles.
//!
//! Usage: `hdc_loadgen [--addr HOST:PORT] [--features N] [--levels M]
//! [--connections C] [--requests R] [--seed S]`
//!
//! `--features` / `--levels` must match the served model.

use std::net::ToSocketAddrs;

use hdc_serve::{loadgen, LoadgenConfig};

struct Options {
    addr: String,
    n_features: usize,
    m_levels: usize,
    config: LoadgenConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7878".to_owned(),
            n_features: 16,
            m_levels: 8,
            config: LoadgenConfig::default(),
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(i),
            "--features" => {
                opts.n_features = value(i).parse().expect("--features needs an integer")
            }
            "--levels" => opts.m_levels = value(i).parse().expect("--levels needs an integer"),
            "--connections" => {
                opts.config.connections = value(i).parse().expect("--connections needs an integer")
            }
            "--requests" => {
                opts.config.requests_per_connection =
                    value(i).parse().expect("--requests needs an integer")
            }
            "--seed" => opts.config.seed = value(i).parse().expect("--seed needs an integer"),
            other => panic!(
                "unknown argument '{other}'; supported: --addr --features --levels \
                 --connections --requests --seed"
            ),
        }
        i += 2;
    }
    opts
}

fn main() -> std::io::Result<()> {
    let opts = parse_options();
    let addr = opts
        .addr
        .to_socket_addrs()?
        .next()
        .expect("address resolves");
    println!(
        "driving {} with {} connections × {} requests …",
        addr, opts.config.connections, opts.config.requests_per_connection
    );
    let report = loadgen::run(addr, opts.n_features, opts.m_levels, &opts.config)?;
    println!(
        "  {:.0} requests/s  ({} ok, {} errors, {:.2} s)",
        report.requests_per_sec, report.total_requests, report.errors, report.elapsed_secs
    );
    println!(
        "  latency µs: p50 {}  p95 {}  p99 {}  max {}  mean {:.0}",
        report.latency.p50_micros,
        report.latency.p95_micros,
        report.latency.p99_micros,
        report.latency.max_micros,
        report.latency.mean_micros
    );
    Ok(())
}
