//! The thread-per-connection core: one reader + one writer thread per
//! connection ([`CoreKind::Threaded`](crate::server::CoreKind)).
//!
//! This is the original serving core, kept as the portable fallback and
//! as the differential baseline the epoll core is pinned against: both
//! cores share every byte of request policy
//! (`dispatch_incoming` in `crate::server`), so their
//! responses are identical — they differ only in how sockets are
//! driven and how far they scale (this core spends two OS threads per
//! connection; the event loop multiplexes thousands on one).
//!
//! ## Connection multiplexing
//!
//! Every connection is a **pipeline**: the read side parses requests
//! (line-JSON or binary frames, negotiated by first-byte sniffing — see
//! [`wire`]) and enqueues them without waiting for answers; a dedicated
//! per-connection writer thread interleaves responses as batch workers
//! finish, matched to requests by id, possibly out of order. A client
//! may keep up to `pipeline_window` classify requests in flight; the
//! window is enforced with a structured *overload* error
//! (`"overloaded":true` / error-frame flag bit 1), so well-behaved
//! clients drain responses instead of stalling the server. Serial
//! request/response clients are a degenerate pipeline of depth 1 and
//! behave exactly as they did before multiplexing.
//!
//! Both servers block the calling thread until `shutdown` is raised:
//! connection handlers, writers and batch workers run on
//! `std::thread::scope` threads, so the server needs no `'static` state
//! and no external runtime. Shutdown is graceful — the accept loop
//! stops, readers notice within their read-timeout tick and stop
//! accepting new requests, in-flight requests are answered, writers
//! drain, the queue closes, workers exit.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use hdc_model::ClassifySession;
use hdc_store::ModelRegistry;

use crate::batcher::{
    worker_loop, BatchConfig, BatchQueue, CompletionSink, Delivery, Job, JobKind,
};
use crate::metrics::{elapsed_us, ServeMetrics};
use crate::server::{
    dispatch_incoming, incoming_from_json, next_frame_step, registry_worker_loop,
    render_completion, ConnOutbox, CoreStats, FrameStep, InflightSet, RegistryBrain, RegistryCtx,
    RegistryServeConfig, RequestBrain, ServeStats, SessionBrain, POLL_TICK,
};
use crate::wire::{self, WireMode};

/// Responses (beyond the classify window itself) the writer may have
/// pending before the read side stops pulling bytes off the socket.
/// Inline responses — errors, info, overload notices — are not metered
/// by the pipeline window, so without this cap a client that floods
/// requests and never reads responses would grow the writer's queue
/// without bound; at the cap, the reader pauses and ordinary TCP
/// back-pressure reaches the client.
const WRITER_BACKLOG_SLACK: usize = 256;

/// Shared per-connection I/O state handed to the dispatcher.
struct ConnIo<'a, 'env> {
    mode: WireMode,
    queue: &'a BatchQueue,
    tx: &'a mpsc::Sender<Delivery>,
    /// Ids of classify requests currently queued or running. The read
    /// side inserts before enqueue; the writer removes as it renders
    /// the completion — its size is the pipeline depth.
    inflight: &'a Mutex<InflightSet>,
    /// Deliveries handed to the writer but not yet written: the read
    /// side increments per send (inline response or enqueued job), the
    /// writer decrements per delivery processed.
    pending: &'a AtomicU64,
    window: usize,
    stats: &'a CoreStats<'env>,
}

impl ConnIo<'_, '_> {
    /// The writer-backlog ceiling: the full pipeline window plus slack
    /// for unmetered inline responses.
    fn backlog_cap(&self) -> u64 {
        (self.window + WRITER_BACKLOG_SLACK) as u64
    }

    fn send_raw(&self, bytes: Vec<u8>) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // The writer only exits once every sender is gone; a failed
        // send means the connection is already tearing down.
        let _ = self.tx.send(Delivery::Raw(bytes));
    }

    /// Blocks while the writer's backlog is at the cap (a client
    /// sending without reading). Returns `false` when shutdown was
    /// raised while waiting.
    fn wait_for_backlog_room(&self, shutdown: &AtomicBool) -> bool {
        while self.pending.load(Ordering::SeqCst) >= self.backlog_cap() {
            if shutdown.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

impl<'env> ConnOutbox<'env> for ConnIo<'_, 'env> {
    fn mode(&self) -> WireMode {
        self.mode
    }

    fn window(&self) -> usize {
        self.window
    }

    fn stats(&self) -> &CoreStats<'env> {
        self.stats
    }

    fn send_inline(&mut self, bytes: Vec<u8>) {
        self.send_raw(bytes);
    }

    fn inflight_contains(&self, id: u64) -> bool {
        self.inflight
            .lock()
            .expect("in-flight set lock never poisoned")
            .contains(&id)
    }

    fn inflight_len(&self) -> usize {
        self.inflight
            .lock()
            .expect("in-flight set lock never poisoned")
            .len()
    }

    fn inflight_insert(&mut self, id: u64) {
        self.inflight
            .lock()
            .expect("in-flight set lock never poisoned")
            .insert(id);
    }

    fn inflight_remove(&mut self, id: u64) {
        self.inflight
            .lock()
            .expect("in-flight set lock never poisoned")
            .remove(&id);
    }

    fn enqueue(&mut self, id: u64, kind: JobKind) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queue.push(Job {
            id,
            kind,
            tx: CompletionSink::Channel(self.tx.clone()),
            enqueued_at: self.stats.metrics.is_some().then(Instant::now),
        });
    }

    fn offload_admin(&mut self, run: Box<dyn FnOnce() -> String + Send + 'env>) {
        // Swaps are rare; blocking this one connection's reader while
        // the new generation builds is the intended behavior — classify
        // traffic on other connections keeps flowing on the old
        // generation.
        self.send_raw(run().into_bytes());
    }
}

/// The per-connection writer: receives deliveries (batch completions,
/// pre-rendered inline responses) and writes them in arrival order —
/// which for pipelined completions is *completion* order, not request
/// order; clients match on the echoed id. Exits when every sender
/// (reader + all queued jobs) is gone.
fn writer_loop(
    stream: TcpStream,
    rx: mpsc::Receiver<Delivery>,
    mode: WireMode,
    inflight: &Mutex<InflightSet>,
    pending: &AtomicU64,
    metrics: Option<&ServeMetrics>,
) {
    let mut writer = BufWriter::new(stream);
    let mut dead = false;
    while let Ok(first) = rx.recv() {
        // One drain+flush cycle is this core's write-backlog drain
        // stage (the event loop's counterpart is its nonblocking
        // flush).
        let drain_start = metrics.map(|_| Instant::now());
        let mut next = Some(first);
        // Greedily drain whatever has completed, then flush once: under
        // pipelined load this coalesces many small responses into one
        // syscall.
        while let Some(delivery) = next {
            let bytes = match delivery {
                Delivery::Raw(bytes) => bytes,
                Delivery::Done(done) => {
                    inflight
                        .lock()
                        .expect("in-flight set lock never poisoned")
                        .remove(&done.id);
                    render_completion(mode, &done)
                }
            };
            if !dead && writer.write_all(&bytes).is_err() {
                // Client hung up (or stalled past the write timeout)
                // mid-pipeline: keep draining so the in-flight and
                // backlog bookkeeping finishes, skip the writes — and
                // shut the socket down so the read side sees EOF and
                // closes the connection instead of silently accepting
                // requests that will never be answered.
                dead = true;
                let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
            }
            pending.fetch_sub(1, Ordering::SeqCst);
            next = rx.try_recv().ok();
        }
        if !dead && writer.flush().is_err() {
            dead = true;
            let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
        }
        if let (Some(m), Some(start)) = (metrics, drain_start) {
            m.drain_us.record(elapsed_us(start));
        }
    }
}

/// One connection: sniff the wire format, then run the read loop on
/// this thread and the writer on a scoped sibling. Returns when the
/// client hangs up, a fatal framing fault closes the stream, or
/// shutdown is raised (after in-flight requests are answered).
fn handle_connection<'env, B: RequestBrain<'env>>(
    stream: TcpStream,
    mut brain: B,
    queue: &BatchQueue,
    shutdown: &AtomicBool,
    stats: &CoreStats<'env>,
    window: usize,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;

    // Negotiate the wire format without consuming anything: the first
    // byte of a binary connection is the magic 0xB1, which no JSON line
    // starts with.
    let sniff_start = stats.metrics.map(|_| Instant::now());
    let mode = loop {
        let mut first = [0u8; 1];
        match stream.peek(&mut first) {
            Ok(0) => return Ok(()), // connected, sent nothing, left
            Ok(_) => {
                break if first[0] == wire::MAGIC0 {
                    WireMode::Binary
                } else {
                    WireMode::Json
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    };
    if let (Some(m), Some(start)) = (stats.metrics, sniff_start) {
        m.sniff_us.record(elapsed_us(start));
    }

    let write_stream = stream.try_clone()?;
    // A generous write timeout keeps a stalled (never-reading) client
    // from pinning the writer — and with it, graceful shutdown —
    // forever once the kernel send buffer fills.
    write_stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let (tx, rx) = mpsc::channel::<Delivery>();
    let inflight = Mutex::new(InflightSet::new());
    let pending = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let writer = scope.spawn({
            let inflight = &inflight;
            let pending = &pending;
            let metrics = stats.metrics;
            move || writer_loop(write_stream, rx, mode, inflight, pending, metrics)
        });
        let mut io = ConnIo {
            mode,
            queue,
            tx: &tx,
            inflight: &inflight,
            pending: &pending,
            window: window.max(1),
            stats,
        };
        let result = match mode {
            WireMode::Json => read_json_loop(&stream, &mut io, &mut brain, shutdown),
            WireMode::Binary => read_binary_loop(&stream, &mut io, &mut brain, shutdown),
        };
        // Dropping the reader's sender lets the writer exit once the
        // last in-flight job has delivered its completion.
        drop(tx);
        let _ = writer.join();
        result
    })
}

/// Read loop, line-JSON flavor.
fn read_json_loop<'env, B: RequestBrain<'env>>(
    stream: &TcpStream,
    io: &mut ConnIo<'_, 'env>,
    brain: &mut B,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // Stop pulling bytes while the writer backlog is at its cap
        // (client sends but does not read) — TCP back-pressure takes
        // over from here.
        if !io.wait_for_backlog_room(shutdown) {
            break;
        }
        // `line` is NOT cleared at the top: a read timeout may leave a
        // partially received request in it, and the next tick must
        // append the rest instead of dropping the fragment.
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up (any partial line is theirs)
            Ok(_) => {
                if !line.trim().is_empty() {
                    let incoming = incoming_from_json(&line);
                    if !dispatch_incoming(io, brain, incoming) {
                        break;
                    }
                }
                line.clear();
                // A client that never pauses must not be able to pin
                // this reader past shutdown: in-flight requests are
                // answered by the writer, then the connection closes.
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// Read loop, binary-frame flavor: accumulate bytes, peel off complete
/// frames, dispatch each. Framed-but-malformed requests (unknown
/// opcode, newer version, bad payload) answer a structured error and
/// keep the connection — and its sibling in-flight requests — alive;
/// only an untrustworthy stream (bad magic, oversized length prefix)
/// closes it.
fn read_binary_loop<'env, B: RequestBrain<'env>>(
    mut stream: &TcpStream,
    io: &mut ConnIo<'_, 'env>,
    brain: &mut B,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let mut frames = wire::FrameBuffer::new();
    let mut chunk = vec![0u8; 64 * 1024];
    'conn: loop {
        // Same writer-backlog pause as the JSON loop (frames already
        // buffered still dispatch — bounded by one read chunk).
        if !io.wait_for_backlog_room(shutdown) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // client hung up (any partial frame is theirs)
            Ok(n) => {
                frames.extend(&chunk[..n]);
                loop {
                    match next_frame_step(&mut frames) {
                        FrameStep::Dispatch(incoming) => {
                            if !dispatch_incoming(io, brain, incoming) {
                                break 'conn;
                            }
                        }
                        FrameStep::NeedMore => break,
                        FrameStep::CloseSilent => break 'conn,
                        FrameStep::CloseAfter(fatal) => {
                            let _ = dispatch_incoming(io, brain, fatal);
                            break 'conn;
                        }
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The two server flavors
// ---------------------------------------------------------------------

/// Serves classify traffic for one fixed session on `listener` until
/// `shutdown` is raised, with one reader + one writer thread per
/// connection. Semantics are identical to
/// [`crate::serve`](crate::server::serve) — this entry point exists so
/// tests and benches can pin the threaded core explicitly.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve<S: ClassifySession>(
    listener: TcpListener,
    session: &S,
    config: &BatchConfig,
    shutdown: &AtomicBool,
    metrics: Option<&ServeMetrics>,
) -> std::io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let queue = BatchQueue::new();
    let stats = CoreStats::new(metrics);
    let served = AtomicU64::new(0);
    let mut connections = 0u64;

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.workers.max(1))
            .map(|_| scope.spawn(|| worker_loop(&queue, session, config, &served, metrics)))
            .collect();

        let mut handler_handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            // Reap handlers whose connections already closed, so a
            // long-running server does not accumulate one JoinHandle
            // per connection it ever accepted.
            handler_handles.retain(|h: &std::thread::ScopedJoinHandle<'_, ()>| !h.is_finished());
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let queue = &queue;
                    let stats = &stats;
                    handler_handles.push(scope.spawn(move || {
                        stats.enter_connection();
                        let _ = handle_connection(
                            stream,
                            SessionBrain {
                                session,
                                metrics: stats.metrics,
                            },
                            queue,
                            shutdown,
                            stats,
                            config.pipeline_window,
                        );
                        stats.leave_connection();
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => break,
            }
        }

        // Graceful shutdown: stop accepting, let handlers drain their
        // in-flight requests (readers exit within a read-timeout tick,
        // writers once the last completion lands — the workers are
        // still popping batches at this point), then close the queue so
        // workers finish the backlog and exit.
        for h in handler_handles {
            let _ = h.join();
        }
        queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServeStats {
        requests: stats.requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: stats.throttled.load(Ordering::Relaxed),
    })
}

/// Serves classify traffic from a [`ModelRegistry`] on `listener` until
/// `shutdown` is raised, with one reader + one writer thread per
/// connection. Semantics are identical to
/// [`crate::serve_registry`](crate::server::serve_registry) — see its
/// documentation, including the **trust boundary** notes on the
/// unauthenticated admin plane.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only terminate that connection.
pub fn serve_registry(
    listener: TcpListener,
    registry: &ModelRegistry,
    config: &RegistryServeConfig,
    shutdown: &AtomicBool,
    metrics: Option<&ServeMetrics>,
) -> std::io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let queue = BatchQueue::new();
    let stats = CoreStats::new(metrics);
    let served = AtomicU64::new(0);
    let mut connections = 0u64;
    let ctx = RegistryCtx {
        registry,
        admission: &config.admission,
        stats: &stats,
    };

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.batch.workers.max(1))
            .map(|_| {
                scope.spawn(|| {
                    registry_worker_loop(&queue, registry, &config.batch, &served, metrics)
                })
            })
            .collect();

        let mut handler_handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            // Same handle reaping as `serve`: the registry server is
            // the long-running default, so this matters even more here.
            handler_handles.retain(|h: &std::thread::ScopedJoinHandle<'_, ()>| !h.is_finished());
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let ctx = &ctx;
                    let queue = &queue;
                    handler_handles.push(scope.spawn(move || {
                        ctx.stats.enter_connection();
                        let _ = handle_connection(
                            stream,
                            RegistryBrain::new(ctx),
                            queue,
                            shutdown,
                            ctx.stats,
                            config.batch.pipeline_window,
                        );
                        ctx.stats.leave_connection();
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => break,
            }
        }

        for h in handler_handles {
            let _ = h.join();
        }
        queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServeStats {
        requests: stats.requests.load(Ordering::Relaxed),
        classified: served.load(Ordering::Relaxed),
        connections,
        throttled: stats.throttled.load(Ordering::Relaxed),
    })
}
