//! Thin libc shims for the event-driven server core.
//!
//! Everything here follows the same pattern as the `HYPERVEC_PIN`
//! `sched_setaffinity` shim in `hypervec::par`: a tiny `extern "C"` block
//! behind `#[cfg(target_os = "linux")]`, best-effort semantics, and a silent
//! no-op (or an explicit `Unsupported` error) everywhere else. No external
//! crates are involved.
//!
//! Three things live here:
//!
//! * [`Poller`] — a level-triggered `epoll` wrapper (Linux only) whose
//!   [`Poller::wait`] retries `EINTR` internally with a recomputed timeout.
//! * [`Waker`] — a nonblocking self-pipe that worker threads use to nudge the
//!   event loop after pushing a completion. A [`Waker`] deduplicates wakes
//!   with an atomic flag so a storm of completions costs one pipe write.
//! * [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` bump so a 10k+
//!   connection target does not die on the default soft limit of 1024.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// Readiness bit: the file descriptor is readable (`EPOLLIN`).
pub const EV_READ: u32 = 0x001;
/// Readiness bit: the file descriptor is writable (`EPOLLOUT`).
pub const EV_WRITE: u32 = 0x004;
/// Readiness bit: error condition (`EPOLLERR`).
pub const EV_ERROR: u32 = 0x008;
/// Readiness bit: peer hung up (`EPOLLHUP`).
pub const EV_HANGUP: u32 = 0x010;

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Bitwise OR of the `EV_*` readiness bits.
    pub events: u32,
}

impl PollEvent {
    /// True when the descriptor has bytes to read (or a pending hangup, which
    /// level-triggered epoll reports so the read path can observe EOF).
    pub fn readable(&self) -> bool {
        self.events & (EV_READ | EV_HANGUP | EV_ERROR) != 0
    }

    /// True when the descriptor can accept more bytes.
    pub fn writable(&self) -> bool {
        self.events & (EV_WRITE | EV_ERROR) != 0
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw syscall surface. x86-64 `epoll_event` is `#[repr(C, packed)]`.

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const O_NONBLOCK: i32 = 0x800;
    pub const O_CLOEXEC: i32 = 0x80000;
    pub const RLIMIT_NOFILE: i32 = 7;

    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
}

/// Level-triggered `epoll` instance (Linux only).
///
/// Registrations map a raw file descriptor to a caller-chosen `u64` token;
/// [`Poller::wait`] hands the token back with the readiness bits. `EINTR`
/// from `epoll_wait` is retried internally with the timeout recomputed from a
/// monotonic clock, so callers never observe a spurious `Interrupted` error.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Create a new epoll instance with close-on-exec set.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given token and interest mask (`EV_*` bits).
    pub fn add(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest mask of an already-registered descriptor.
    pub fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Remove a descriptor from the interest set. Errors are ignored so the
    /// teardown path can call this unconditionally.
    pub fn remove(&self, fd: i32) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Block until at least one registered descriptor is ready or the timeout
    /// elapses, appending readiness events to `out`. Returns the number of
    /// events delivered (0 on timeout). `EINTR` is retried with the remaining
    /// timeout.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize> {
        const CAP: usize = 256;
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let deadline = if timeout_ms >= 0 {
            Some(std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms as u64))
        } else {
            None
        };
        loop {
            let remaining = match deadline {
                None => -1,
                Some(d) => d
                    .saturating_duration_since(std::time::Instant::now())
                    .as_millis()
                    .min(i32::MAX as u128) as i32,
            };
            let n = unsafe { sys::epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, remaining) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    // Retried with the recomputed remaining timeout; a zero
                    // remainder still makes one non-blocking pass so a wake
                    // that raced the signal is not lost.
                    continue;
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                out.push(PollEvent {
                    token: ev.data,
                    events: ev.events,
                });
            }
            return Ok(n as usize);
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::close(self.epfd);
        }
    }
}

/// A self-pipe the worker pool uses to nudge the event loop.
///
/// Producers call [`Waker::wake`] after pushing work onto a completion
/// channel; an atomic flag collapses any number of wakes between two event
/// loop passes into a single one-byte pipe write. The event loop registers
/// [`Waker::read_fd`] with its [`Poller`], and on readiness calls
/// [`Waker::drain`] *before* draining the completion channel, which is the
/// ordering that makes the dedup flag race-free.
///
/// On non-Linux targets the type still exists (so cross-platform code can
/// hold one) but both operations are no-ops.
#[derive(Debug)]
pub struct Waker {
    #[cfg(target_os = "linux")]
    read_fd: i32,
    #[cfg(target_os = "linux")]
    write_fd: i32,
    pending: AtomicBool,
}

impl Waker {
    /// Create the wake pipe (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        #[cfg(target_os = "linux")]
        {
            let mut fds = [-1i32; 2];
            let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Waker {
                read_fd: fds[0],
                write_fd: fds[1],
                pending: AtomicBool::new(false),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Waker {
                pending: AtomicBool::new(false),
            })
        }
    }

    /// The readable end to register with a [`Poller`] (Linux only).
    #[cfg(target_os = "linux")]
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// Nudge the event loop. Deduplicated: only the first wake after a
    /// [`Waker::drain`] pays the pipe write. Errors (pipe full, loop gone)
    /// are ignored — a full pipe already guarantees a pending wakeup, and a
    /// closed read end means the loop has exited.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            #[cfg(target_os = "linux")]
            unsafe {
                let byte = 1u8;
                let _ = sys::write(self.write_fd, &byte, 1);
            }
        }
    }

    /// Drain the pipe and reset the dedup flag. Call this before draining
    /// whatever channel the producers pushed to: any producer that skipped
    /// its pipe write because the flag was still set is ordered before the
    /// flag reset, so its payload is visible to the channel drain that
    /// follows.
    pub fn drain(&self) {
        #[cfg(target_os = "linux")]
        unsafe {
            let mut buf = [0u8; 64];
            while sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) > 0 {}
        }
        self.pending.store(false, Ordering::SeqCst);
    }
}

#[cfg(target_os = "linux")]
impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::close(self.read_fd);
            let _ = sys::close(self.write_fd);
        }
    }
}

/// Best-effort raise of `RLIMIT_NOFILE` so the server can hold `target`
/// descriptors. Returns `Some((soft, hard))` with the limits now in force
/// when the query succeeded, `None` when the platform gave no answer.
/// Never fails: if the soft limit cannot be raised the current limits are
/// reported and the caller decides whether to complain. Silent no-op
/// returning `None` off Linux.
pub fn raise_nofile_limit(target: u64) -> Option<(u64, u64)> {
    #[cfg(target_os = "linux")]
    {
        let mut lim = sys::Rlimit { cur: 0, max: 0 };
        if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
            return None;
        }
        if lim.cur < target {
            let want = sys::Rlimit {
                cur: target.min(lim.max),
                max: lim.max,
            };
            if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) } == 0 {
                lim.cur = want.cur;
            }
        }
        Some((lim.cur, lim.max))
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = target;
        None
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_wakes_poller_and_dedups() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.read_fd(), 7, EV_READ).unwrap();

        // No wake yet: times out empty.
        let mut events = Vec::new();
        let n = poller.wait(&mut events, 10).unwrap();
        assert_eq!(n, 0);

        // Many wakes collapse into one readiness event.
        for _ in 0..100 {
            waker.wake();
        }
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        // Drain resets the flag; the next wake is visible again.
        waker.drain();
        events.clear();
        assert_eq!(poller.wait(&mut events, 10).unwrap(), 0);
        waker.wake();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
    }

    #[test]
    fn rlimit_query_reports_limits() {
        let got = raise_nofile_limit(1024);
        let (soft, hard) = got.expect("getrlimit works on linux");
        assert!(soft >= 1, "soft nofile limit should be nonzero");
        assert!(hard >= soft);
    }

    extern "C" fn noop_handler(_sig: i32) {}

    #[test]
    fn eintr_during_wait_is_retried() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
            fn pthread_self() -> u64;
            fn pthread_kill(thread: u64, sig: i32) -> i32;
        }
        const SIGUSR1: i32 = 10;
        unsafe {
            signal(SIGUSR1, noop_handler as *const () as usize);
        }

        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poller.add(waker.read_fd(), 3, EV_READ).unwrap();

        let waiter_thread = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        std::thread::scope(|scope| {
            let thread_slot = Arc::clone(&waiter_thread);
            let wake_handle = Arc::clone(&waker);
            let waiter = scope.spawn(move || {
                thread_slot.store(unsafe { pthread_self() }, Ordering::SeqCst);
                let mut events = Vec::new();
                let n = poller.wait(&mut events, 10_000).unwrap();
                (n, events)
            });

            // Interrupt the epoll_wait with a signal, twice for good measure,
            // then deliver a real wake. The waiter must survive both EINTRs
            // and report the wake, well before its 10s timeout.
            let mut tid = 0;
            while tid == 0 {
                tid = waiter_thread.load(Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
            }
            std::thread::sleep(Duration::from_millis(30));
            unsafe {
                assert_eq!(pthread_kill(tid, SIGUSR1), 0);
            }
            std::thread::sleep(Duration::from_millis(30));
            unsafe {
                assert_eq!(pthread_kill(tid, SIGUSR1), 0);
            }
            std::thread::sleep(Duration::from_millis(30));
            wake_handle.wake();

            let (n, events) = waiter.join().unwrap();
            assert_eq!(n, 1, "wake delivered after EINTR retries");
            assert_eq!(events[0].token, 3);
        });
        assert!(
            started.elapsed() < Duration::from_secs(9),
            "wait returned via the wake, not the timeout"
        );
    }
}
