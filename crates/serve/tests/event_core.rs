//! Event-core acceptance tests: the epoll core pinned bit-identical to
//! the threaded core, the bulk-classify opcode, streamed snapshot
//! transfers, and the event loop's concurrency edge cases (split
//! frames, slow-loris backlogs, drain/capacity rejections).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use hdc_serve::demo::{self, DemoSpec};
use hdc_serve::{
    protocol, serve_registry_with_core, serve_with_core, wire, AdmissionConfig, BatchConfig,
    CoreKind, RegistryServeConfig,
};
use hdc_store::ModelSnapshot;

/// Arms the server's shutdown flag on drop, so a client-side panic
/// inside a `thread::scope` fails the test instead of deadlocking the
/// scope on a server thread that was never told to stop.
struct ShutdownGuard<'a>(&'a AtomicBool);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Reads one raw binary response frame (header + payload bytes).
fn read_raw_frame(reader: &mut impl Read) -> Vec<u8> {
    let mut frame = vec![0u8; wire::HEADER_LEN];
    reader.read_exact(&mut frame).expect("frame header");
    let len = u32::from_le_bytes(frame[12..16].try_into().unwrap()) as usize;
    frame.resize(wire::HEADER_LEN + len, 0);
    reader
        .read_exact(&mut frame[wire::HEADER_LEN..])
        .expect("frame payload");
    frame
}

/// Serial JSON round trip returning the raw response line.
fn json_roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &str,
) -> String {
    writer.write_all(request.as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "server closed instead of answering");
    line
}

fn demo_row(spec: &DemoSpec, i: usize) -> Vec<u16> {
    (0..spec.n_features)
        .map(|f| ((i + f) % spec.m_levels) as u16)
        .collect()
}

/// Drives the full differential script against one server and returns
/// every raw response byte-string in a deterministic order.
///
/// The script covers both wires and every response family: classify
/// (with and without scores), search, info, stats, malformed lines,
/// validation errors, duplicate ids, admission throttling, bulk
/// frames, unknown opcodes, version mismatches, an oversized frame
/// (connection-fatal), and a registry reload landing mid-script from a
/// dedicated admin connection.
fn drive_differential_script(
    addr: SocketAddr,
    spec: &DemoSpec,
    snap_path: &std::path::Path,
) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = Vec::new();

    // --- JSON connection, pre-swap -----------------------------------
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut json = |req: &str, out: &mut Vec<Vec<u8>>| {
        out.push(json_roundtrip(&mut reader, &mut writer, req).into_bytes());
    };
    for i in 0..4usize {
        json(
            &protocol::request_line(i as u64 + 1, &demo_row(spec, i), i % 2 == 1),
            &mut out,
        );
    }
    json(
        &protocol::search_request_line(5, &demo_row(spec, 5), 3),
        &mut out,
    );
    json(&protocol::request_line(6, &[1, 2], false), &mut out); // wrong width
    json(
        &protocol::request_line(7, &vec![9999u16; spec.n_features], true),
        &mut out,
    ); // out of range
    json(&protocol::info_request_line(8), &mut out);
    json("{oops\n", &mut out); // malformed
    json(&protocol::stats_request_line(9), &mut out);

    // --- binary connection, pre-swap ---------------------------------
    let bstream = TcpStream::connect(addr).unwrap();
    bstream.set_nodelay(true).unwrap();
    let mut breader = BufReader::new(bstream.try_clone().unwrap());
    let mut bwriter = bstream;
    let mut bin = |frame: &[u8], out: &mut Vec<Vec<u8>>| {
        bwriter.write_all(frame).unwrap();
        out.push(read_raw_frame(&mut breader));
    };
    for i in 0..4usize {
        bin(
            &wire::classify_frame(100 + i as u64, &demo_row(spec, i), i % 2 == 0),
            &mut out,
        );
    }
    bin(&wire::search_frame(104, &demo_row(spec, 2), 4), &mut out);
    bin(&wire::info_frame(105), &mut out);
    bin(&wire::classify_frame(106, &[3], false), &mut out); // wrong width
    let mut rows: Vec<Vec<u16>> = (0..5).map(|i| demo_row(spec, i)).collect();
    rows[3] = vec![9999; spec.n_features]; // one rejected row inside the bulk
    let row_refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
    bin(&wire::bulk_classify_frame(107, &row_refs, true), &mut out);
    let mut bad_op = wire::classify_frame(108, &demo_row(spec, 0), false);
    bad_op[3] = 0x7E;
    bin(&bad_op, &mut out); // unknown opcode
    let mut bad_ver = wire::classify_frame(109, &demo_row(spec, 0), false);
    bad_ver[2] = wire::WIRE_VERSION + 1;
    bin(&bad_ver, &mut out); // wrong version

    // --- reload mid-script from a dedicated admin connection ----------
    let astream = TcpStream::connect(addr).unwrap();
    let mut areader = BufReader::new(astream.try_clone().unwrap());
    let mut awriter = astream;
    out.push(
        json_roundtrip(
            &mut areader,
            &mut awriter,
            &protocol::reload_request_line(900, snap_path.to_str().unwrap(), None),
        )
        .into_bytes(),
    );

    // --- post-swap traffic on the *same* pre-swap connections ----------
    for i in 0..3usize {
        json(
            &protocol::request_line(20 + i as u64, &demo_row(spec, i), true),
            &mut out,
        );
        bin(
            &wire::classify_frame(120 + i as u64, &demo_row(spec, i), true),
            &mut out,
        );
    }
    json(&protocol::info_request_line(30), &mut out);

    // Oversized length prefix: answered, then the connection closes.
    let mut oversized = wire::classify_frame(131, &demo_row(spec, 0), false);
    oversized[12..16].copy_from_slice(&(wire::MAX_PAYLOAD as u32 + 1).to_le_bytes());
    bin(&oversized, &mut out);
    let mut probe = [0u8; 1];
    assert_eq!(breader.read(&mut probe).unwrap(), 0, "clean close");

    // --- throttling: a fresh connection burns a tiny budget ------------
    let tstream = TcpStream::connect(addr).unwrap();
    let mut treader = BufReader::new(tstream.try_clone().unwrap());
    let mut twriter = tstream;
    for i in 0..6usize {
        out.push(
            json_roundtrip(
                &mut treader,
                &mut twriter,
                &protocol::request_line(200 + i as u64, &demo_row(spec, i), false),
            )
            .into_bytes(),
        );
    }
    out
}

/// The tentpole pin: both cores serve the same request script with
/// byte-identical responses — scores, match lists, error shapes,
/// request-id echoes, bulk outcomes, admission throttling and a
/// mid-script registry swap included, on both wire formats.
#[test]
fn event_core_responses_are_bit_identical_to_threaded_core() {
    let spec = DemoSpec {
        dim: 256,
        train_size: 64,
        ..Default::default()
    };
    // A replacement snapshot both servers reload mid-script.
    let dir = std::env::temp_dir().join("hdc_serve_differential_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("replacement.hdsn");
    let replacement = demo::demo_model(&DemoSpec { seed: 4242, ..spec });
    ModelSnapshot::from_standard_model(&replacement)
        .save(&snap_path)
        .unwrap();

    let config = RegistryServeConfig {
        batch: BatchConfig::default(),
        admission: AdmissionConfig {
            query_budget: 3,
            ..AdmissionConfig::default()
        },
    };

    let mut transcripts = Vec::new();
    for core in [CoreKind::Threaded, CoreKind::Event] {
        // Identical seeds build identical registries, so the only
        // variable between the two transcripts is the connection core.
        let registry = demo::demo_locked_registry(&spec, 2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let transcript = std::thread::scope(|s| {
            let server =
                s.spawn(|| serve_registry_with_core(core, listener, &registry, &config, &shutdown));
            let _guard = ShutdownGuard(&shutdown);
            let transcript = drive_differential_script(addr, &spec, &snap_path);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
            transcript
        });
        transcripts.push(transcript);
    }
    let (threaded, event) = (&transcripts[0], &transcripts[1]);
    assert_eq!(threaded.len(), event.len());
    for (i, (t, e)) in threaded.iter().zip(event).enumerate() {
        assert_eq!(
            t,
            e,
            "response {i} diverged between cores:\n  threaded: {:?}\n  event:    {:?}",
            String::from_utf8_lossy(t),
            String::from_utf8_lossy(e)
        );
    }
    let _ = std::fs::remove_file(&snap_path);
}

/// The int-metric twin of the differential pin: SEARCH against a
/// non-binary (integer class memory, cosine) model answers
/// byte-identical MATCHES frames on both cores, on both wires — the
/// blocked int planes and strided dot kernels behind the int search
/// path must not perturb a single serialized bit.
#[test]
fn int_search_responses_are_bit_identical_across_cores() {
    let spec = DemoSpec {
        dim: 2048,
        train_size: 64,
        ..Default::default()
    };
    let model = demo::demo_nonbinary_model(&spec);
    let session = model.session();

    let mut transcripts = Vec::new();
    for core in [CoreKind::Threaded, CoreKind::Event] {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let transcript = std::thread::scope(|s| {
            let server = s.spawn(|| {
                serve_with_core(core, listener, &session, &BatchConfig::default(), &shutdown)
            });
            let _guard = ShutdownGuard(&shutdown);

            let mut out: Vec<Vec<u8>> = Vec::new();
            // JSON wire: SEARCH lines with varying k.
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for i in 0..6usize {
                out.push(
                    json_roundtrip(
                        &mut reader,
                        &mut writer,
                        &protocol::search_request_line(
                            i as u64 + 1,
                            &demo_row(&spec, i),
                            1 + i % 4,
                        ),
                    )
                    .into_bytes(),
                );
            }
            drop(reader);
            drop(writer);

            // Binary wire: SEARCH frames over the same rows.
            let bstream = TcpStream::connect(addr).unwrap();
            bstream.set_nodelay(true).unwrap();
            let mut breader = BufReader::new(bstream.try_clone().unwrap());
            let mut bwriter = bstream;
            for i in 0..6usize {
                bwriter
                    .write_all(&wire::search_frame(
                        100 + i as u64,
                        &demo_row(&spec, i),
                        1 + i % 4,
                    ))
                    .unwrap();
                out.push(read_raw_frame(&mut breader));
            }
            drop(breader);
            drop(bwriter);

            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
            out
        });
        transcripts.push(transcript);
    }

    let (threaded, event) = (&transcripts[0], &transcripts[1]);
    assert_eq!(threaded.len(), event.len());
    for (i, (t, e)) in threaded.iter().zip(event).enumerate() {
        assert_eq!(
            t,
            e,
            "int SEARCH response {i} diverged between cores:\n  threaded: {:?}\n  event:    {:?}",
            String::from_utf8_lossy(t),
            String::from_utf8_lossy(e)
        );
    }

    // Sanity: the transcript really carries MATCHES payloads with the
    // session's own exact scores, on both wires.
    let resp = protocol::parse_response(&String::from_utf8(threaded[2].clone()).unwrap()).unwrap();
    let hits = resp.matches.expect("JSON search answered with matches");
    assert_eq!(hits.len(), 3);
    let buf = &mut wire::FrameBuffer::new();
    buf.extend(&threaded[8]);
    let (header, payload) = buf.next_frame().unwrap().unwrap();
    let decoded = wire::decode_response(&header, &payload).unwrap();
    let bhits = decoded
        .matches
        .expect("binary search answered with matches");
    assert_eq!(bhits.len(), 3);
    let row = demo_row(&spec, 2);
    let refs: Vec<&[u16]> = vec![&row];
    let want = session.search_topk_batch(&refs, 3, None);
    for (got, exact) in bhits.iter().zip(want.matches(0)) {
        assert_eq!(got.row as usize, exact.row);
        assert_eq!(got.score.to_bits(), exact.score.to_bits());
    }
}

/// The BULK_CLASSIFY opcode answers every row bit-identical to the same
/// rows sent as N single CLASSIFY frames, through the same validation,
/// admission and batch fusion.
#[test]
fn bulk_classify_matches_single_frames_bit_identically() {
    let spec = DemoSpec {
        dim: 512,
        train_size: 128,
        ..Default::default()
    };
    let model = demo::demo_model(&spec);
    let session = model.session();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_with_core(
                CoreKind::default(),
                listener,
                &session,
                &BatchConfig::default(),
                &shutdown,
            )
        });
        let _guard = ShutdownGuard(&shutdown);

        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;

        let rows: Vec<Vec<u16>> = (0..12usize).map(|i| demo_row(&spec, i)).collect();
        let row_refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();

        // N singles with scores…
        let mut singles = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            writer
                .write_all(&wire::classify_frame(i as u64 + 1, row, true))
                .unwrap();
            let frame = read_raw_frame(&mut reader);
            let buf = &mut wire::FrameBuffer::new();
            buf.extend(&frame);
            let (header, payload) = buf.next_frame().unwrap().unwrap();
            singles.push(wire::decode_response(&header, &payload).unwrap());
        }

        // …then the same rows in one bulk frame.
        writer
            .write_all(&wire::bulk_classify_frame(99, &row_refs, true))
            .unwrap();
        let frame = read_raw_frame(&mut reader);
        let buf = &mut wire::FrameBuffer::new();
        buf.extend(&frame);
        let (header, payload) = buf.next_frame().unwrap().unwrap();
        let bulk = wire::decode_response(&header, &payload).unwrap();
        assert_eq!(bulk.id, 99);
        let outcomes = bulk.bulk.expect("bulk outcomes");
        assert_eq!(outcomes.len(), rows.len());

        for (i, (single, outcome)) in singles.iter().zip(&outcomes).enumerate() {
            assert_eq!(outcome.class, single.class, "row {i}");
            assert_eq!(outcome.class, Some(session.classify(&rows[i])), "row {i}");
            let ss = single.scores.as_ref().unwrap();
            let bs = outcome.scores.as_ref().unwrap();
            assert_eq!(ss.len(), bs.len());
            for (a, b) in ss.iter().zip(bs) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} scores");
            }
        }

        // An invalid row rejects in place without sinking the frame.
        let bad_row = vec![9999u16; spec.n_features];
        let mut mixed = row_refs.clone();
        mixed[4] = &bad_row;
        writer
            .write_all(&wire::bulk_classify_frame(100, &mixed, false))
            .unwrap();
        let frame = read_raw_frame(&mut reader);
        let buf = &mut wire::FrameBuffer::new();
        buf.extend(&frame);
        let (header, payload) = buf.next_frame().unwrap().unwrap();
        let outcomes = wire::decode_response(&header, &payload)
            .unwrap()
            .bulk
            .unwrap();
        assert!(outcomes[4].error.as_ref().unwrap().contains("out of range"));
        for (i, outcome) in outcomes.iter().enumerate() {
            if i != 4 {
                assert_eq!(outcome.class, Some(session.classify(&rows[i])), "row {i}");
            }
        }

        drop(reader);
        drop(writer);
        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
    });
}

/// Bulk rows are metered by admission row-by-row: a budget of 5 admits
/// the first five rows of an eight-row bulk frame and throttles the
/// rest in place.
#[test]
fn bulk_rows_are_admission_metered() {
    let spec = DemoSpec {
        dim: 256,
        train_size: 64,
        ..Default::default()
    };
    let registry = demo::demo_locked_registry(&spec, 2);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    let config = RegistryServeConfig {
        batch: BatchConfig::default(),
        admission: AdmissionConfig {
            query_budget: 5,
            ..AdmissionConfig::default()
        },
    };

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_registry_with_core(CoreKind::default(), listener, &registry, &config, &shutdown)
        });
        let _guard = ShutdownGuard(&shutdown);

        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let rows: Vec<Vec<u16>> = (0..8usize).map(|i| demo_row(&spec, i)).collect();
        let row_refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        writer
            .write_all(&wire::bulk_classify_frame(1, &row_refs, false))
            .unwrap();
        let frame = read_raw_frame(&mut reader);
        let buf = &mut wire::FrameBuffer::new();
        buf.extend(&frame);
        let (header, payload) = buf.next_frame().unwrap().unwrap();
        let outcomes = wire::decode_response(&header, &payload)
            .unwrap()
            .bulk
            .unwrap();
        assert_eq!(outcomes.len(), 8);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i < 5 {
                assert!(
                    outcome.class.is_some(),
                    "row {i} within budget: {outcome:?}"
                );
            } else {
                assert!(
                    outcome.error.as_ref().unwrap().contains("budget"),
                    "row {i} over budget: {outcome:?}"
                );
            }
        }

        drop(reader);
        drop(writer);
        shutdown.store(true, Ordering::SeqCst);
        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.throttled, 3, "three bulk rows throttled");
    });
}

/// Streamed snapshot transfer end to end: chunk a snapshot over the
/// wire, commit, and watch the generation swap — plus abort, commit
/// with nothing staged, and a corrupted stream failing its checksum.
#[test]
fn streamed_snapshot_transfer_reloads_the_registry() {
    let spec = DemoSpec {
        dim: 256,
        train_size: 64,
        ..Default::default()
    };
    let registry = demo::demo_locked_registry(&spec, 2);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    let config = RegistryServeConfig::default();

    let replacement = demo::demo_model(&DemoSpec { seed: 777, ..spec });
    let replacement_session = replacement.session();
    let snapshot_bytes = ModelSnapshot::from_standard_model(&replacement).to_bytes();

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_registry_with_core(CoreKind::default(), listener, &registry, &config, &shutdown)
        });
        let _guard = ShutdownGuard(&shutdown);

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut rt = |req: &str| {
            protocol::parse_response(&json_roundtrip(&mut reader, &mut writer, req)).unwrap()
        };

        // Commit with no transfer staged is a structured error.
        let resp = rt(&protocol::xfer_commit_line(1, None));
        assert!(resp.error.unwrap().contains("no snapshot transfer"));

        // Begin + chunks + commit swaps the generation.
        let resp = rt(&protocol::xfer_begin_line(2, snapshot_bytes.len() as u64));
        assert_eq!(resp.xfer_received, Some(0), "{resp:?}");
        let mut sent = 0u64;
        for chunk in snapshot_bytes.chunks(1000) {
            sent += chunk.len() as u64;
            let resp = rt(&protocol::xfer_chunk_line(3, chunk));
            assert_eq!(resp.xfer_received, Some(sent), "{resp:?}");
        }
        let resp = rt(&protocol::xfer_commit_line(4, None));
        let swapped = resp.swapped.expect("commit swaps");
        assert_eq!(swapped.generation, 2);

        // Served answers now come from the streamed model, bit-equal.
        let row = demo_row(&spec, 3);
        let resp = rt(&protocol::request_line(5, &row, true));
        assert_eq!(resp.class, Some(replacement_session.classify(&row)));
        let refs: Vec<&[u16]> = vec![&row];
        let want = replacement_session.scores_batch(&refs);
        for (g, w) in resp.scores.unwrap().iter().zip(want.scores(0)) {
            assert_eq!(g.to_bits(), w.to_bits());
        }

        // Abort: acknowledged with the byte count, nothing swaps.
        let resp = rt(&protocol::xfer_begin_line(6, snapshot_bytes.len() as u64));
        assert_eq!(resp.xfer_received, Some(0));
        let resp = rt(&protocol::xfer_chunk_line(7, &snapshot_bytes[..500]));
        assert_eq!(resp.xfer_received, Some(500));
        let resp = rt(&protocol::xfer_abort_line(8));
        assert_eq!(resp.xfer_received, Some(500), "{resp:?}");
        let resp = rt(&protocol::info_request_line(9));
        assert_eq!(resp.info.unwrap().generation, 2, "abort must not swap");

        // A corrupted stream fails the envelope checksum on commit.
        let mut corrupt = snapshot_bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        let resp = rt(&protocol::xfer_begin_line(10, corrupt.len() as u64));
        assert_eq!(resp.xfer_received, Some(0));
        for chunk in corrupt.chunks(4096) {
            let resp = rt(&protocol::xfer_chunk_line(11, chunk));
            assert!(resp.error.is_none(), "{resp:?}");
        }
        let resp = rt(&protocol::xfer_commit_line(12, None));
        assert!(
            resp.error.unwrap().contains("snapshot transfer invalid"),
            "corrupt stream must fail commit"
        );
        let resp = rt(&protocol::info_request_line(13));
        assert_eq!(
            resp.info.unwrap().generation,
            2,
            "failed commit must not swap"
        );

        // Garbage dies on the first chunk, not at commit.
        let resp = rt(&protocol::xfer_begin_line(14, 4096));
        assert_eq!(resp.xfer_received, Some(0));
        let resp = rt(&protocol::xfer_chunk_line(15, b"this is not a snapshot"));
        assert!(resp.error.unwrap().contains("snapshot transfer invalid"));

        drop(reader);
        drop(writer);
        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
    });
}

/// Frames (and JSON lines) split at every byte boundary across separate
/// socket writes still parse and answer correctly.
#[test]
fn frames_split_at_every_byte_boundary_still_parse() {
    let spec = DemoSpec {
        dim: 256,
        train_size: 64,
        ..Default::default()
    };
    let model = demo::demo_model(&spec);
    let session = model.session();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_with_core(
                CoreKind::default(),
                listener,
                &session,
                &BatchConfig::default(),
                &shutdown,
            )
        });
        let _guard = ShutdownGuard(&shutdown);

        let row = demo_row(&spec, 1);
        let want_class = session.classify(&row);

        // Binary: one frame, split at every interior byte offset.
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let template = wire::classify_frame(0, &row, false);
        for split in 1..template.len() {
            let mut frame = wire::classify_frame(split as u64, &row, false);
            debug_assert_eq!(frame.len(), template.len());
            let rest = frame.split_off(split);
            writer.write_all(&frame).unwrap();
            writer.flush().unwrap();
            // A pause between halves forces separate readiness events.
            std::thread::sleep(Duration::from_millis(1));
            writer.write_all(&rest).unwrap();
            let resp_frame = read_raw_frame(&mut reader);
            let buf = &mut wire::FrameBuffer::new();
            buf.extend(&resp_frame);
            let (header, payload) = buf.next_frame().unwrap().unwrap();
            let resp = wire::decode_response(&header, &payload).unwrap();
            assert_eq!(resp.id, split as u64, "split at byte {split}");
            assert_eq!(resp.class, Some(want_class), "split at byte {split}");
        }
        drop(reader);
        drop(writer);

        // JSON: one line, split at every interior byte offset.
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let template = protocol::request_line(0, &row, false);
        for split in 1..template.len() {
            let line = protocol::request_line(split as u64, &row, false);
            let (head, tail) = line.as_bytes().split_at(split.min(line.len() - 1));
            writer.write_all(head).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
            writer.write_all(tail).unwrap();
            let mut resp_line = String::new();
            reader.read_line(&mut resp_line).unwrap();
            let resp = protocol::parse_response(&resp_line).unwrap();
            assert_eq!(resp.id, split as u64, "split at byte {split}");
            assert_eq!(resp.class, Some(want_class), "split at byte {split}");
        }

        drop(reader);
        drop(writer);
        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
    });
}

/// A slow-loris client whose write backlog fills past the server's
/// high watermark stalls only itself: a sibling connection keeps
/// serving, and the loris still gets every response once it drains.
#[test]
fn slow_loris_backlog_does_not_stall_siblings() {
    let spec = DemoSpec {
        dim: 256,
        train_size: 64,
        ..Default::default()
    };
    let model = demo::demo_model(&spec);
    let session = model.session();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_with_core(
                CoreKind::default(),
                listener,
                &session,
                &BatchConfig::default(),
                &shutdown,
            )
        });
        let _guard = ShutdownGuard(&shutdown);

        // The loris: a flood of malformed lines whose inline error
        // responses (~60 bytes each) overflow the 256 KiB backlog
        // watermark while the client reads nothing. The requests
        // themselves (~20 bytes each) fit comfortably in the kernel
        // socket buffers, so this write completes without the client
        // ever draining.
        const FLOOD: usize = 9000;
        let loris_stream = TcpStream::connect(addr).unwrap();
        let mut loris_reader = BufReader::new(loris_stream.try_clone().unwrap());
        let mut loris_writer = loris_stream;
        let flood: String = (0..FLOOD).map(|i| format!("{{\"id\":{i},oops\n")).collect();
        loris_writer.write_all(flood.as_bytes()).unwrap();
        loris_writer.flush().unwrap();

        // While the loris sits on its unread backlog, a sibling must
        // round-trip unhindered (this would hang if the loop stalled).
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let row = demo_row(&spec, 2);
        for i in 0..50u64 {
            let resp = protocol::parse_response(&json_roundtrip(
                &mut reader,
                &mut writer,
                &protocol::request_line(i, &row, false),
            ))
            .unwrap();
            assert_eq!(resp.class, Some(session.classify(&row)), "sibling req {i}");
        }

        // The loris drains: all FLOOD responses arrive in send order.
        let mut line = String::new();
        for i in 0..FLOOD {
            line.clear();
            loris_reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert_eq!(resp.id, i as u64, "loris responses in send order");
            assert!(resp.error.is_some());
        }
        // And the connection still classifies — reads resumed.
        let resp = protocol::parse_response(&json_roundtrip(
            &mut loris_reader,
            &mut loris_writer,
            &protocol::request_line(99_999, &row, false),
        ))
        .unwrap();
        assert_eq!(resp.class, Some(session.classify(&row)));

        drop(loris_reader);
        drop(loris_writer);
        drop(reader);
        drop(writer);
        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
    });
}

/// Event-core structured rejections (Linux-only semantics): a connect
/// past `max_connections` and a connect during drain are both answered
/// with an `"overloaded"` error line instead of a silent close, and a
/// JSON line over the cap closes with an error.
#[cfg(target_os = "linux")]
#[test]
fn event_core_rejects_capacity_drain_and_oversized_lines_cleanly() {
    let spec = DemoSpec {
        dim: 256,
        train_size: 64,
        ..Default::default()
    };
    let model = demo::demo_model(&spec);
    let session = model.session();

    // --- capacity ------------------------------------------------------
    {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = BatchConfig {
            max_connections: 2,
            ..BatchConfig::default()
        };
        std::thread::scope(|s| {
            let server = s
                .spawn(|| serve_with_core(CoreKind::Event, listener, &session, &config, &shutdown));
            let _guard = ShutdownGuard(&shutdown);
            let row = demo_row(&spec, 0);

            let mut keep = Vec::new();
            for i in 0..2u64 {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let resp = protocol::parse_response(&json_roundtrip(
                    &mut reader,
                    &mut writer,
                    &protocol::request_line(i, &row, false),
                ))
                .unwrap();
                assert!(resp.class.is_some());
                keep.push((reader, writer));
            }

            // The third connection is told why, then closed.
            let extra = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(extra.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert!(resp.overloaded, "{resp:?}");
            assert!(resp.error.unwrap().contains("connection capacity"));
            let mut probe = [0u8; 1];
            assert_eq!(reader.read(&mut probe).unwrap(), 0, "closed after reject");

            drop(keep);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }

    // --- drain ---------------------------------------------------------
    {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        // A long batch window holds one request in flight so the drain
        // has something to wait for while we probe the accept path.
        let config = BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(500),
            workers: 1,
            ..BatchConfig::default()
        };
        std::thread::scope(|s| {
            let server = s
                .spawn(|| serve_with_core(CoreKind::Event, listener, &session, &config, &shutdown));
            let _guard = ShutdownGuard(&shutdown);
            let row = demo_row(&spec, 0);

            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            writer
                .write_all(protocol::request_line(1, &row, false).as_bytes())
                .unwrap();
            // Let the request reach the loop, then start the drain.
            std::thread::sleep(Duration::from_millis(60));
            shutdown.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(60));

            // A connect during the drain window is rejected with a reason.
            let late = TcpStream::connect(addr).unwrap();
            let mut late_reader = BufReader::new(late.try_clone().unwrap());
            let mut line = String::new();
            late_reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert!(resp.overloaded, "{resp:?}");
            assert!(resp.error.unwrap().contains("draining"));

            // The in-flight request still completes before the server
            // exits.
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert_eq!(resp.class, Some(session.classify(&row)));

            drop(reader);
            drop(writer);
            server.join().unwrap().unwrap();
        });
    }

    // --- oversized JSON line -------------------------------------------
    {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let config = BatchConfig::default();
        std::thread::scope(|s| {
            let server = s
                .spawn(|| serve_with_core(CoreKind::Event, listener, &session, &config, &shutdown));
            let _guard = ShutdownGuard(&shutdown);

            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let blob = vec![b'x'; (1 << 20) + 2];
            writer.write_all(&blob).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let resp = protocol::parse_response(&line).unwrap();
            assert!(resp.error.unwrap().contains("exceeds"), "line cap error");
            let mut probe = [0u8; 1];
            assert_eq!(reader.read(&mut probe).unwrap(), 0, "closed after cap");

            drop(reader);
            drop(writer);
            shutdown.store(true, Ordering::SeqCst);
            server.join().unwrap().unwrap();
        });
    }
}

/// The open-loop fan-in loadgen drives hundreds of concurrent
/// pipelined connections — with churn — against the event core with
/// zero errors, on both wires.
#[cfg(target_os = "linux")]
#[test]
fn fan_in_loadgen_sustains_concurrent_churning_connections() {
    use hdc_serve::{loadgen, FanInConfig, WireMode};

    let spec = DemoSpec {
        dim: 256,
        train_size: 64,
        ..Default::default()
    };
    let model = demo::demo_model(&spec);
    let session = model.session();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_with_core(
                CoreKind::Event,
                listener,
                &session,
                &BatchConfig::default(),
                &shutdown,
            )
        });
        let _guard = ShutdownGuard(&shutdown);

        for wire_mode in [WireMode::Binary, WireMode::Json] {
            let report = loadgen::run_fan_in(
                addr,
                spec.n_features,
                spec.m_levels,
                &FanInConfig {
                    connections: 200,
                    requests_per_connection: 20,
                    pipeline: 4,
                    wire: wire_mode,
                    seed: 33,
                    churn_every: Some(7),
                    search_k: None,
                },
            )
            .unwrap();
            assert_eq!(report.total_requests, 4000, "{wire_mode:?}");
            assert_eq!(report.errors, 0, "{wire_mode:?}");
            assert!(report.requests_per_sec > 0.0);
        }

        shutdown.store(true, Ordering::SeqCst);
        let stats = server.join().unwrap().unwrap();
        // Churn reconnects mean strictly more accepts than the fleet.
        assert!(stats.connections > 400, "churn drove extra accepts");
    });
}
