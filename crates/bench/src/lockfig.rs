//! Shared driver for the Fig. 5 / Fig. 6 HDLock security-validation
//! sweeps (binary vs non-binary differ only in the oracle output and
//! scoring metric).

use hdc_attack::{sweep_parameter, CountingOracle, LockProbe, SweptParam};
use hdc_model::ModelKind;
use hdlock::{BasePool, EncodingKey, LockConfig, LockedEncoder};
use hypervec::{HvRng, LevelHvs};

use crate::{fmt_f, summarize, RunOptions, TextTable};

/// Outcome of one validation panel (one swept parameter).
#[derive(Debug, Clone)]
pub struct PanelOutcome {
    /// Panel tag, `(a)`–`(d)`.
    pub panel: &'static str,
    /// Human-readable parameter name.
    pub label: &'static str,
    /// Guesses evaluated.
    pub guesses: u64,
    /// Score of the correct guess.
    pub correct: f64,
    /// Best (lowest) wrong-guess score.
    pub best_wrong: f64,
    /// Mean wrong-guess score.
    pub mean_wrong: f64,
    /// Whether the correct guess separates with margin 0.1.
    pub separated: bool,
}

/// Runs the four-panel validation experiment and prints the table.
/// Returns the per-panel outcomes so tests can assert on them.
pub fn run_lock_validation(
    opts: &RunOptions,
    kind: ModelKind,
    figure: &str,
    metric: &str,
) -> Vec<PanelOutcome> {
    // N = P = 784 matches the paper's MNIST shape in both quick and full
    // runs; only dataset scale and sweep stride differ.
    let n = 784;
    let cfg = LockConfig {
        n_features: n,
        m_levels: 16,
        dim: opts.dim,
        pool_size: n,
        n_layers: 2,
    };
    println!("{figure} reproduction: HDLock security validation, {kind} HDC");
    println!(
        "N = P = {n}, D = {}, L = 2; rotation sweeps use stride {} (use --full for stride 1)\n",
        cfg.dim, opts.stride
    );

    // The harness plays the victim: build pool/values/key explicitly so
    // it can later tell the sweep which parameter values are correct.
    let mut rng = HvRng::from_seed(opts.seed);
    let pool = BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
    let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels).expect("levels");
    let key = EncodingKey::random(
        &mut rng,
        cfg.n_features,
        cfg.n_layers,
        cfg.pool_size,
        cfg.dim,
    )
    .expect("key");
    let encoder =
        LockedEncoder::from_parts(pool.clone(), values.clone(), key.clone()).expect("encoder");
    let oracle = CountingOracle::new(&encoder);

    let probe = LockProbe::capture(&oracle, &values, 0, kind).expect("probe");
    println!(
        "attack probe: 2 oracle queries, |I| = {} differing indices\n",
        probe.support()
    );

    let mut t = TextTable::new(vec![
        "panel".to_owned(),
        "swept parameter".to_owned(),
        "guesses".to_owned(),
        format!("correct ({metric})"),
        "best wrong".to_owned(),
        "mean wrong".to_owned(),
        "separated?".to_owned(),
    ]);
    let panels = [
        ("(a)", SweptParam::Rotation { layer: 0 }, "k_{1,1}"),
        ("(b)", SweptParam::BaseIndex { layer: 0 }, "index(B_{1,1})"),
        ("(c)", SweptParam::Rotation { layer: 1 }, "k_{1,2}"),
        ("(d)", SweptParam::BaseIndex { layer: 1 }, "index(B_{1,2})"),
    ];
    let mut outcomes = Vec::new();
    for (panel, param, label) in panels {
        let sweep = sweep_parameter(&probe, &pool, key.feature(0), param, cfg.dim, opts.stride)
            .expect("sweep");
        let wrong = summarize(&sweep.scores[1..]);
        let outcome = PanelOutcome {
            panel,
            label,
            guesses: sweep.stats.guesses,
            correct: sweep.correct_score(),
            best_wrong: wrong.min,
            mean_wrong: wrong.mean,
            separated: sweep.separates(0.1),
        };
        t.row(vec![
            outcome.panel.to_owned(),
            outcome.label.to_owned(),
            outcome.guesses.to_string(),
            fmt_f(outcome.correct, 4),
            fmt_f(outcome.best_wrong, 4),
            fmt_f(outcome.mean_wrong, 4),
            if outcome.separated {
                "YES".to_owned()
            } else {
                "NO".to_owned()
            },
        ]);
        outcomes.push(outcome);
    }
    t.emit(opts.csv.as_deref());

    let total = hdlock::hdlock_reasoning_guesses(n, cfg.dim, cfg.pool_size, cfg.n_layers);
    println!(
        "paper check: the correct guess separates in every panel, but only because the\n\
         other three parameters were granted; a blind attacker needs {total} tries\n\
         (paper: 4.81e16) to reason the full MNIST mapping."
    );
    outcomes
}
