//! # hdlock-bench — experiment harness for the HDLock reproduction
//!
//! One binary per paper table/figure (see `DESIGN.md` §3 for the
//! experiment index):
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `fig3`  | Fig. 3 — guess-distance profile against a standard encoder |
//! | `table1`| Tab. 1 — original vs recovered accuracy + reasoning time |
//! | `fig5`  | Fig. 5 — HDLock parameter sweeps, binary model |
//! | `fig6`  | Fig. 6 — HDLock parameter sweeps, non-binary model |
//! | `fig7`  | Fig. 7 — guess counts vs `D`, `P`, `L` |
//! | `fig8`  | Fig. 8 — accuracy vs key layers |
//! | `fig9`  | Fig. 9 — relative encoding time vs key layers |
//!
//! Every binary accepts `--full` (paper-scale parameters), `--scale X`
//! (dataset-size multiplier), `--dim N`, `--seed S`, `--stride K` and
//! `--csv PATH`.
//!
//! This library holds the shared run-scale parsing and plain-text table
//! rendering used by those binaries.

#![warn(missing_docs)]

pub mod lockfig;

use std::fmt::Write as _;

/// Common command-line options for experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Dataset-size multiplier (1.0 = paper-like sample counts).
    pub scale: f64,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Master seed.
    pub seed: u64,
    /// Rotation-sweep stride for Fig. 5/6 (1 = exhaustive).
    pub stride: usize,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Whether `--full` was requested.
    pub full: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 0.05,
            dim: 10_000,
            seed: 2022,
            stride: 20,
            csv: None,
            full: false,
        }
    }
}

impl RunOptions {
    /// Parses options from `std::env::args`, with experiment-specific
    /// defaults applied first.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_args(mut defaults: RunOptions) -> RunOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    defaults.full = true;
                    defaults.scale = 1.0;
                    defaults.stride = 1;
                    i += 1;
                }
                "--scale" => {
                    defaults.scale = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a float"));
                    i += 2;
                }
                "--dim" => {
                    defaults.dim = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--dim needs an integer"));
                    i += 2;
                }
                "--seed" => {
                    defaults.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                    i += 2;
                }
                "--stride" => {
                    defaults.stride = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--stride needs an integer"));
                    i += 2;
                }
                "--csv" => {
                    defaults.csv = Some(
                        args.get(i + 1)
                            .unwrap_or_else(|| panic!("--csv needs a path"))
                            .clone(),
                    );
                    i += 2;
                }
                other => panic!(
                    "unknown argument '{other}'; supported: --full --scale X --dim N --seed S --stride K --csv PATH"
                ),
            }
        }
        defaults
    }
}

/// A plain-text table renderer for experiment output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (j, cell) in row.iter().enumerate() {
                widths[j] = widths[j].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (j, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", cell, width = widths[j]);
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.headers);
        for (j, w) in widths.iter().enumerate().take(ncol) {
            let _ = write!(&mut out, "|{:-<width$}", "", width = w + 2);
            if j == ncol - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table and, if requested, writes the CSV file.
    pub fn emit(&self, csv: Option<&str>) {
        println!("{}", self.render());
        if let Some(path) = csv {
            if let Err(e) = std::fs::write(path, self.to_csv()) {
                eprintln!("warning: cannot write {path}: {e}");
            } else {
                println!("(csv written to {path})");
            }
        }
    }
}

/// Formats a float with `prec` decimals.
#[must_use]
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Simple summary statistics of a score slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreSummary {
    /// Minimum value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
}

/// Summarizes a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn summarize(scores: &[f64]) -> ScoreSummary {
    assert!(!scores.is_empty(), "cannot summarize an empty slice");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &s in scores {
        min = min.min(s);
        max = max.max(s);
        sum += s;
    }
    ScoreSummary {
        min,
        mean: sum / scores.len() as f64,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        let s = t.render();
        assert!(s.contains("| a "));
        assert!(s.contains("| long-header "));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["a,b"]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn summarize_computes_stats() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn defaults_are_sane() {
        let o = RunOptions::default();
        assert_eq!(o.dim, 10_000);
        assert!(!o.full);
    }
}
