//! Fig. 6 — HDLock security validation on the **non-binary** HDC model.
//!
//! Same four-panel sweep as Fig. 5, but the oracle exposes the integer
//! encoding and guesses are scored by cosine similarity on the
//! differing index set (reported here as `1 − cosine`, so 0.0 is the
//! paper's "cosine value exactly 1 with 100 % confidence").

use hdc_model::ModelKind;
use hdlock_bench::lockfig::run_lock_validation;
use hdlock_bench::RunOptions;

fn main() {
    let opts = RunOptions::from_args(RunOptions::default());
    run_lock_validation(&opts, ModelKind::NonBinary, "Fig. 6", "1 − cosine on I");
}
