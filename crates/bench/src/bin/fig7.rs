//! Fig. 7 — theoretical reasoning complexity of HDLock.
//!
//! (a) number of guesses vs dimension `D` and pool size `P` at `L = 2`;
//! (b) number of guesses vs key layers `L` for `P ∈ {100,300,500,700}`
//! at `D = 10 000` (log-scale y in the paper). Also prints the Sec. 4.2
//! headline numbers for MNIST.

use hdlock::{hdlock_reasoning_guesses, standard_reasoning_guesses};
use hdlock_bench::{RunOptions, TextTable};

fn main() {
    let opts = RunOptions::from_args(RunOptions::default());
    let n = 784;

    println!("Sec. 4.2 headline numbers (MNIST, N = P = 784, D = 10 000):");
    println!(
        "  standard model:  {} guesses (paper: 6.15e5)",
        standard_reasoning_guesses(n)
    );
    println!(
        "  HDLock L = 1:    {} guesses (paper: 6.15e9)",
        hdlock_reasoning_guesses(n, 10_000, n, 1)
    );
    println!(
        "  HDLock L = 2:    {} guesses (paper: 4.81e16)",
        hdlock_reasoning_guesses(n, 10_000, n, 2)
    );
    let amp = hdlock::amplification_log10(n, 10_000, n, 2);
    println!("  amplification:   10^{amp:.2} (paper: 7.82e10 ≈ 10^10.89)\n");

    println!("Fig. 7(a): log10(guesses) vs D and P, L = 2, N = {n}");
    let dims = [2_000usize, 4_000, 6_000, 8_000, 10_000, 12_000, 14_000];
    let pools = [100usize, 200, 300, 400, 500, 600, 700, 800];
    let mut ta = TextTable::new(
        std::iter::once("D \\ P".to_owned())
            .chain(pools.iter().map(|p| p.to_string()))
            .collect::<Vec<_>>(),
    );
    for &d in &dims {
        let mut row = vec![d.to_string()];
        for &p in &pools {
            row.push(format!(
                "{:.2}",
                hdlock_reasoning_guesses(n, d, p, 2).log10()
            ));
        }
        ta.row(row);
    }
    ta.emit(opts.csv.as_deref());

    println!("Fig. 7(b): log10(guesses) vs L for P ∈ {{100, 300, 500, 700}}, D = 10 000");
    let mut tb = TextTable::new(
        std::iter::once("L".to_owned())
            .chain([100usize, 300, 500, 700].iter().map(|p| format!("P = {p}")))
            .collect::<Vec<_>>(),
    );
    for l in 1..=5usize {
        let mut row = vec![l.to_string()];
        for p in [100usize, 300, 500, 700] {
            row.push(format!(
                "{:.2}",
                hdlock_reasoning_guesses(n, 10_000, p, l).log10()
            ));
        }
        tb.row(row);
    }
    tb.emit(None);

    println!("paper shape checks:");
    println!("  - guesses grow monomially with D and P at fixed L (panel a)");
    println!("  - guesses grow exponentially with L (straight lines on log scale, panel b)");
    println!("  - P and L mutually enhance: the P-gap widens as L grows");
}
