//! Fig. 5 — HDLock security validation on the **binary** HDC model.
//!
//! Paper setup: MNIST encoder under HDLock with `N = P = 784`,
//! `D = 10 000`, `L = 2`. The adversary (worst case) already knows
//! three of the four key parameters of feature 1 —
//! `{k_{1,1}, index(B_{1,1}), k_{1,2}, index(B_{1,2})}` — and sweeps the
//! last one, scoring each guess with the Eq. 13 criterion (Hamming
//! distance on the differing index set `I`). The correct value scores
//! ≈ 0 only because everything else is right: any single wrong
//! parameter makes the derived mapping useless.

use hdc_model::ModelKind;
use hdlock_bench::lockfig::run_lock_validation;
use hdlock_bench::RunOptions;

fn main() {
    let opts = RunOptions::from_args(RunOptions::default());
    run_lock_validation(&opts, ModelKind::Binary, "Fig. 5", "Hamming distance on I");
}
