//! Associative-search and serving throughput benchmark with
//! machine-readable output.
//!
//! Measures queries/second of class-memory search at three rungs —
//! the naive per-dimension *scalar* scan (the baseline, defined exactly
//! like `BENCH_encoding.json`'s `record_scalar_per_sample`: one scalar
//! comparison per dimension), the word-parallel one-row-at-a-time
//! popcount scan (`classify_binary_hv`, the pre-refactor inference
//! path), and the sharded batch kernels (single- and multi-threaded,
//! both metrics) — then boots the batching TCP server on a loopback
//! port and drives it with the load generator across the wire-format ×
//! pipelining grid (JSON/binary, serial/pipelined), asserting the
//! answers bit-identical across wire formats. Writes
//! `BENCH_search.json` so the perf trajectory is tracked across PRs
//! next to `BENCH_encoding.json`; `bench_gate` enforces the recorded
//! speedups against `ci/bench_gates.json`.
//!
//! A second, million-row section measures *top-k* similarity search —
//! the exact heap scan
//! ([`hypervec::ShardedClassMemory::search_topk_binary`]) against the
//! coarse-probe pruned scan — over a corpus with planted near-duplicate
//! families, recording q/s, the pruned-vs-exact speedup, and recall@k,
//! and asserting in-bench that the pruned scan at full probe width is
//! bit-identical to the exact one. The same corpus shape is then
//! rebuilt at `--int-dim` with `to_int` bipolar rows and run through
//! the *int* (cosine) twins `search_topk_int` /
//! `search_topk_int_pruned`, so the quantized-coarse-pass recall
//! contract is measured on both metrics; the `int` JSON section also
//! rolls up the blocked int batch kernel against the per-row cosine
//! scan and against the PR 7 recorded baseline.
//!
//! A third section measures *connection-count scalability*: a
//! threaded-core binary+pipelined baseline (the PR 5 shape — a handful
//! of sockets, deep pipelines) against the epoll event core under an
//! open-loop fan-in of thousands of concurrent pipelined sockets
//! ([`loadgen::run_fan_in`]), recording sustained connections,
//! requests/s, tail latency, and the event-vs-threaded throughput
//! ratio gated in `ci/bench_gates.json`.
//!
//! Usage: `bench_search [--dim D] [--classes C] [--queries Q]
//! [--connections K] [--requests R] [--topk-rows N] [--topk-k K]
//! [--topk-queries Q] [--int-dim D] [--fan-connections F]
//! [--fan-requests R] [--out PATH]` — defaults reproduce the
//! acceptance configuration `D = 10 000, C ≥ 8, N = 1 000 000,
//! F = 10 000`.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use hdc_model::{infer, ClassMemory, Encoder as _, ModelKind};
use hdc_serve::demo::{demo_model, DemoSpec};
use hdc_serve::{
    loadgen, protocol, server, wire, BatchConfig, CoreKind, FanInConfig, LoadgenConfig, WireMode,
};
use hypervec::{kernel, BinaryHv, HvRng, IntHv, ProbeConfig, ShardedClassMemory};

struct Options {
    dim: usize,
    n_classes: usize,
    n_queries: usize,
    connections: usize,
    requests: usize,
    topk_rows: usize,
    topk_k: usize,
    topk_queries: usize,
    int_dim: usize,
    fan_connections: usize,
    fan_requests: usize,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            dim: 10_000,
            n_classes: 16,
            n_queries: 256,
            connections: 32,
            requests: 1500,
            topk_rows: 1_000_000,
            topk_k: 10,
            topk_queries: 8,
            int_dim: 2048,
            fan_connections: 10_000,
            fan_requests: 100,
            out: "BENCH_search.json".to_owned(),
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--dim" => opts.dim = value(i).parse().expect("--dim needs an integer"),
            "--classes" => opts.n_classes = value(i).parse().expect("--classes needs an integer"),
            "--queries" => opts.n_queries = value(i).parse().expect("--queries needs an integer"),
            "--connections" => {
                opts.connections = value(i).parse().expect("--connections needs an integer")
            }
            "--requests" => opts.requests = value(i).parse().expect("--requests needs an integer"),
            "--topk-rows" => {
                opts.topk_rows = value(i).parse().expect("--topk-rows needs an integer")
            }
            "--topk-k" => opts.topk_k = value(i).parse().expect("--topk-k needs an integer"),
            "--topk-queries" => {
                opts.topk_queries = value(i).parse().expect("--topk-queries needs an integer")
            }
            "--int-dim" => opts.int_dim = value(i).parse().expect("--int-dim needs an integer"),
            "--fan-connections" => {
                opts.fan_connections = value(i)
                    .parse()
                    .expect("--fan-connections needs an integer")
            }
            "--fan-requests" => {
                opts.fan_requests = value(i).parse().expect("--fan-requests needs an integer")
            }
            "--out" => opts.out = value(i),
            other => panic!(
                "unknown argument '{other}'; supported: --dim --classes --queries \
                 --connections --requests --topk-rows --topk-k --topk-queries \
                 --int-dim --fan-connections --fan-requests --out"
            ),
        }
        i += 2;
    }
    opts
}

/// One measured configuration.
struct Measurement {
    name: String,
    queries_per_sec: f64,
}

impl Measurement {
    fn new(name: impl Into<String>, queries_per_sec: f64) -> Self {
        Measurement {
            name: name.into(),
            queries_per_sec,
        }
    }
}

/// Naive scalar reference: nearest class by Hamming distance computed
/// one *dimension* at a time (the pre-engine way to compare
/// hypervectors) — bit-exact with the popcount paths.
fn scalar_per_dim_nearest(memory: &ClassMemory, query: &BinaryHv) -> usize {
    let mut best = (0usize, usize::MAX);
    for j in 0..memory.n_classes() {
        let row = memory.class_binary(j);
        let mut d = 0usize;
        for i in 0..row.dim() {
            d += usize::from(row.polarity(i) != query.polarity(i));
        }
        if d < best.1 {
            best = (j, d);
        }
    }
    best.0
}

/// Runs `search_all` repeatedly until ≥ `min_secs` of wall clock is
/// spent, returning queries/second.
fn throughput(queries_per_call: usize, min_secs: f64, mut search_all: impl FnMut()) -> f64 {
    search_all(); // warm-up
    let mut calls = 0usize;
    let start = Instant::now();
    loop {
        search_all();
        calls += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    (calls * queries_per_call) as f64 / start.elapsed().as_secs_f64()
}

/// Near-duplicate family size planted around each top-k query's
/// prototype. Kept below `probe_factor · k` (320 by default) so the
/// coarse pass's candidate set can hold a query's whole true
/// neighborhood — the regime the pruned scan is designed for.
const TOPK_FAMILY: usize = 32;

/// Bit-flip rate separating family members (and the query) from their
/// shared prototype: ~10 % noise keeps intra-family Hamming distance
/// ≈ 0.18·D against ≈ 0.5·D for the random background.
const TOPK_NOISE: f64 = 0.10;

/// Copy of `base` with roughly `rate · D` random bit flips.
fn noisy(base: &BinaryHv, rng: &mut HvRng, rate: f64) -> BinaryHv {
    let mut v = base.clone();
    let flips = (base.dim() as f64 * rate) as usize;
    for _ in 0..flips {
        v.flip(rng.index(base.dim()));
    }
    v
}

/// Results of the million-row top-k section.
struct TopKSection {
    exact_qps: f64,
    pruned_qps: f64,
    recall_at_k: f64,
    full_width_bit_identical: bool,
    probe: ProbeConfig,
}

/// Builds the planted-family corpus and measures exact vs pruned top-k
/// throughput and recall@k. The corpus is `topk_rows` random
/// hypervectors except for one [`TOPK_FAMILY`]-sized near-duplicate
/// family per query, scattered through the row range — each query then
/// has a true neighborhood larger than `k`, so recall@k measures
/// something (an all-random corpus has no neighbors to miss).
///
/// Also re-asserts, on the real corpus, the property test's claim that
/// the pruned scan at full probe width is bit-identical to the exact
/// scan — rows *and* score bits.
fn run_topk_section(opts: &Options, rng: &mut HvRng, min_secs: f64) -> TopKSection {
    assert!(
        opts.topk_rows >= opts.topk_queries * TOPK_FAMILY,
        "--topk-rows must fit {} planted families of {TOPK_FAMILY}",
        opts.topk_queries
    );
    let probe = ProbeConfig::default();

    // Plant the families at a fixed stride so positions never collide
    // and every shard of the row range carries some of them.
    let stride = (opts.topk_rows / (opts.topk_queries * TOPK_FAMILY)).max(1);
    let mut planted: HashMap<usize, BinaryHv> = HashMap::new();
    let mut queries: Vec<BinaryHv> = Vec::with_capacity(opts.topk_queries);
    for qi in 0..opts.topk_queries {
        let proto = rng.binary_hv(opts.dim);
        for f in 0..TOPK_FAMILY {
            planted.insert(
                (qi * TOPK_FAMILY + f) * stride,
                noisy(&proto, rng, TOPK_NOISE),
            );
        }
        queries.push(noisy(&proto, rng, TOPK_NOISE));
    }
    let mut corpus = ShardedClassMemory::new(opts.dim);
    corpus.reserve(opts.topk_rows);
    for r in 0..opts.topk_rows {
        let row = planted
            .remove(&r)
            .unwrap_or_else(|| rng.binary_hv(opts.dim));
        corpus.push(&row).expect("corpus rows share the dimension");
    }
    let query_refs: Vec<&BinaryHv> = queries.iter().collect();

    // Ground truth once, then the two correctness checks.
    let exact = corpus
        .search_topk_binary(&query_refs, opts.topk_k)
        .expect("exact top-k over the corpus");
    let full_width = ProbeConfig {
        probe_words: usize::MAX, // clamped to ⌈D/64⌉: coarse pass = exact scan
        exact_threshold: 0,      // force the pruned code path
        ..probe
    };
    let full = corpus
        .search_topk_binary_pruned(&query_refs, opts.topk_k, &full_width)
        .expect("full-width pruned top-k over the corpus");
    let full_width_bit_identical = (0..query_refs.len()).all(|q| {
        let (e, f) = (exact.matches(q), full.matches(q));
        e.len() == f.len()
            && e.iter()
                .zip(f)
                .all(|(a, b)| a.row == b.row && a.score.to_bits() == b.score.to_bits())
    });
    assert!(
        full_width_bit_identical,
        "pruned top-k at full probe width diverged from the exact scan"
    );
    let pruned = corpus
        .search_topk_binary_pruned(&query_refs, opts.topk_k, &probe)
        .expect("pruned top-k over the corpus");
    let recall_at_k = (0..query_refs.len())
        .map(|q| {
            let truth: HashSet<usize> = exact.matches(q).iter().map(|m| m.row).collect();
            let hit = pruned
                .matches(q)
                .iter()
                .filter(|m| truth.contains(&m.row))
                .count();
            hit as f64 / truth.len() as f64
        })
        .sum::<f64>()
        / query_refs.len() as f64;

    let exact_qps = throughput(query_refs.len(), min_secs, || {
        std::hint::black_box(corpus.search_topk_binary(&query_refs, opts.topk_k).unwrap());
    });
    let pruned_qps = throughput(query_refs.len(), min_secs, || {
        std::hint::black_box(
            corpus
                .search_topk_binary_pruned(&query_refs, opts.topk_k, &probe)
                .unwrap(),
        );
    });

    TopKSection {
        exact_qps,
        pruned_qps,
        recall_at_k,
        full_width_bit_identical,
        probe,
    }
}

/// Coarse probe width of the pruned *int* top-k rung: 4 × 64 = 256
/// leading dimensions of the first 1024-dim int plane block — an 8×
/// reduction at the default `--int-dim 2048`, sharing `probe_words`
/// semantics with the binary probe. (`ProbeConfig::default()`'s 16
/// words would cover half of a 2048-dim row: real work, no pruning.)
const INT_TOPK_PROBE_WORDS: usize = 4;

/// `int_batch_backend_avx2` as recorded by PR 7's `BENCH_search.json` —
/// the per-row `dot_i32` int batch path that the blocked planes +
/// strided kernels replace. Kept as a constant so the recorded speedup
/// is against the figure the optimization targeted, not a moving
/// re-measurement of code that no longer exists.
const INT_PR7_BASELINE_QPS: f64 = 41_835.6;

/// Int (cosine) twin of [`run_topk_section`]: the same planted-family
/// corpus shape at `--int-dim`, searched through `search_topk_int` /
/// `search_topk_int_pruned`. Rows are `to_int` bipolar images of the
/// binary corpus rows — the i16 sidecar planes engage (values ±1) and
/// cosine similarity orders families the way Hamming distance does, so
/// recall@k measures the same planted neighborhoods.
fn run_int_topk_section(opts: &Options, rng: &mut HvRng, min_secs: f64) -> TopKSection {
    assert!(
        opts.topk_rows >= opts.topk_queries * TOPK_FAMILY,
        "--topk-rows must fit {} planted families of {TOPK_FAMILY}",
        opts.topk_queries
    );
    let probe = ProbeConfig {
        probe_words: INT_TOPK_PROBE_WORDS,
        ..ProbeConfig::default()
    };

    let stride = (opts.topk_rows / (opts.topk_queries * TOPK_FAMILY)).max(1);
    let mut planted: HashMap<usize, BinaryHv> = HashMap::new();
    let mut queries: Vec<IntHv> = Vec::with_capacity(opts.topk_queries);
    for qi in 0..opts.topk_queries {
        let proto = rng.binary_hv(opts.int_dim);
        for f in 0..TOPK_FAMILY {
            planted.insert(
                (qi * TOPK_FAMILY + f) * stride,
                noisy(&proto, rng, TOPK_NOISE),
            );
        }
        queries.push(noisy(&proto, rng, TOPK_NOISE).to_int());
    }
    let mut corpus = ShardedClassMemory::new(opts.int_dim);
    corpus.reserve(opts.topk_rows);
    let mut int_rows: Vec<IntHv> = Vec::with_capacity(opts.topk_rows);
    for r in 0..opts.topk_rows {
        let row = planted
            .remove(&r)
            .unwrap_or_else(|| rng.binary_hv(opts.int_dim));
        corpus.push(&row).expect("corpus rows share the dimension");
        int_rows.push(row.to_int());
    }
    corpus
        .set_int_rows(&int_rows)
        .expect("int rows mirror the binary corpus");
    drop(int_rows);
    let query_refs: Vec<&IntHv> = queries.iter().collect();

    // Ground truth once, then the two correctness checks.
    let exact = corpus
        .search_topk_int(&query_refs, opts.topk_k)
        .expect("exact int top-k over the corpus");
    let full_width = ProbeConfig {
        probe_words: usize::MAX, // clamped to ⌈D/64⌉: coarse pass = exact scan
        exact_threshold: 0,      // force the pruned code path
        ..probe
    };
    let full = corpus
        .search_topk_int_pruned(&query_refs, opts.topk_k, &full_width)
        .expect("full-width pruned int top-k over the corpus");
    let full_width_bit_identical = (0..query_refs.len()).all(|q| {
        let (e, f) = (exact.matches(q), full.matches(q));
        e.len() == f.len()
            && e.iter()
                .zip(f)
                .all(|(a, b)| a.row == b.row && a.score.to_bits() == b.score.to_bits())
    });
    assert!(
        full_width_bit_identical,
        "pruned int top-k at full probe width diverged from the exact scan"
    );
    let pruned = corpus
        .search_topk_int_pruned(&query_refs, opts.topk_k, &probe)
        .expect("pruned int top-k over the corpus");
    let recall_at_k = (0..query_refs.len())
        .map(|q| {
            let truth: HashSet<usize> = exact.matches(q).iter().map(|m| m.row).collect();
            let hit = pruned
                .matches(q)
                .iter()
                .filter(|m| truth.contains(&m.row))
                .count();
            hit as f64 / truth.len() as f64
        })
        .sum::<f64>()
        / query_refs.len() as f64;

    let exact_qps = throughput(query_refs.len(), min_secs, || {
        std::hint::black_box(corpus.search_topk_int(&query_refs, opts.topk_k).unwrap());
    });
    let pruned_qps = throughput(query_refs.len(), min_secs, || {
        std::hint::black_box(
            corpus
                .search_topk_int_pruned(&query_refs, opts.topk_k, &probe)
                .unwrap(),
        );
    });

    TopKSection {
        exact_qps,
        pruned_qps,
        recall_at_k,
        full_width_bit_identical,
        probe,
    }
}

/// Sends the same deterministic rows (scores requested) through a JSON
/// and a binary connection of the same server and verifies the answers
/// — class indices *and* score bits — are identical across wire
/// formats.
fn wire_results_bit_identical<S: hdc_model::ClassifySession>(
    addr: std::net::SocketAddr,
    session: &S,
) -> bool {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let rows: Vec<Vec<u16>> = (0..64usize)
        .map(|i| {
            (0..session.n_features())
                .map(|f| ((i * 7 + f * 3) % session.m_levels()) as u16)
                .collect()
        })
        .collect();

    let json_stream = TcpStream::connect(addr).expect("connect json");
    let mut json_reader = BufReader::new(json_stream.try_clone().expect("clone"));
    let mut json_writer = json_stream;
    let bin_stream = TcpStream::connect(addr).expect("connect binary");
    let mut bin_reader = BufReader::new(bin_stream.try_clone().expect("clone"));
    let mut bin_writer = bin_stream;

    for (i, row) in rows.iter().enumerate() {
        let id = 1 + i as u64;
        json_writer
            .write_all(protocol::request_line(id, row, true).as_bytes())
            .expect("json send");
        let mut line = String::new();
        json_reader.read_line(&mut line).expect("json recv");
        let jr = protocol::parse_response(&line).expect("json response");

        bin_writer
            .write_all(&wire::classify_frame(id, row, true))
            .expect("binary send");
        let (header, payload) = wire::read_frame(&mut bin_reader).expect("binary recv");
        let br = wire::decode_response(&header, &payload).expect("binary response");

        if jr.id != id || br.id != id || jr.class != br.class || jr.class.is_none() {
            return false;
        }
        let (Some(js), Some(bs)) = (jr.scores, br.scores) else {
            return false;
        };
        if js.len() != bs.len() || js.iter().zip(&bs).any(|(a, b)| a.to_bits() != b.to_bits()) {
            return false;
        }
    }
    true
}

fn main() {
    let opts = parse_options();
    let mut rng = HvRng::from_seed(2022);

    // Class memory with C random prototypes, in both representations.
    let mut memory = ClassMemory::new(ModelKind::Binary, opts.n_classes, opts.dim);
    for j in 0..opts.n_classes {
        let proto = rng.binary_hv(opts.dim);
        memory.acc_mut(j).add(&proto);
        memory.acc_mut(j).add(&rng.binary_hv(opts.dim));
        memory.acc_mut(j).add(&rng.binary_hv(opts.dim));
    }
    memory.rebinarize();
    // A binary memory's snapshot packs only the popcount planes; attach
    // the integer rows explicitly so the cosine kernel is measurable
    // off the same data.
    let mut sharded = memory.to_sharded();
    let int_rows: Vec<IntHv> = (0..opts.n_classes)
        .map(|j| memory.class_int(j).clone())
        .collect();
    sharded
        .set_int_rows(&int_rows)
        .expect("accumulators share the class dimension");

    let bin_queries: Vec<BinaryHv> = (0..opts.n_queries)
        .map(|_| rng.binary_hv(opts.dim))
        .collect();
    let bin_refs: Vec<&BinaryHv> = bin_queries.iter().collect();
    let int_queries: Vec<IntHv> = bin_queries.iter().map(BinaryHv::to_int).collect();
    let int_refs: Vec<&IntHv> = int_queries.iter().collect();
    let min_secs = 0.5;

    let mut results: Vec<Measurement> = Vec::new();

    // Naive per-dimension scalar scan — the baseline, same "scalar"
    // definition as BENCH_encoding.json (bit-exact with every other
    // rung; verified below).
    results.push(Measurement {
        name: "binary_scalar_per_dim_per_query".to_owned(),
        queries_per_sec: throughput(opts.n_queries, min_secs, || {
            for q in &bin_queries {
                std::hint::black_box(scalar_per_dim_nearest(&memory, q));
            }
        }),
    });

    // Word-parallel one-row-at-a-time popcount scan — the pre-refactor
    // inference path (`classify_binary_hv`).
    results.push(Measurement {
        name: "binary_wordparallel_per_query".to_owned(),
        queries_per_sec: throughput(opts.n_queries, min_secs, || {
            for q in &bin_queries {
                std::hint::black_box(infer::classify_binary_hv(&memory, q));
            }
        }),
    });

    // Batch kernel pinned to one worker, then with all workers.
    std::env::set_var("HYPERVEC_THREADS", "1");
    results.push(Measurement {
        name: "binary_batch_1_thread".to_owned(),
        queries_per_sec: throughput(opts.n_queries, min_secs, || {
            std::hint::black_box(sharded.search_batch_binary(&bin_refs).unwrap());
        }),
    });
    std::env::remove_var("HYPERVEC_THREADS");
    results.push(Measurement {
        name: "binary_batch_all_threads".to_owned(),
        queries_per_sec: throughput(opts.n_queries, min_secs, || {
            std::hint::black_box(sharded.search_batch_binary(&bin_refs).unwrap());
        }),
    });

    // Integer (cosine) metric: per-row scan vs batch kernel (the
    // kernel hoists the query norm and precomputes row norms).
    results.push(Measurement {
        name: "int_per_row_per_query".to_owned(),
        queries_per_sec: throughput(opts.n_queries, min_secs, || {
            for q in &int_queries {
                std::hint::black_box(infer::classify_int_hv(&memory, q));
            }
        }),
    });
    results.push(Measurement {
        name: "int_batch_all_threads".to_owned(),
        queries_per_sec: throughput(opts.n_queries, min_secs, || {
            std::hint::black_box(sharded.search_batch_int(&int_refs).unwrap());
        }),
    });

    // Per-kernel-backend timings of the popcount-dominated batch-search
    // kernel, one worker so the backend (not thread count) is what is
    // measured. The dispatch layer picks the best of these at startup;
    // recording each one tracks the SIMD speedup across PRs.
    let backends = kernel::available();
    std::env::set_var("HYPERVEC_THREADS", "1");
    for k in &backends {
        results.push(Measurement::new(
            format!("binary_batch_backend_{}", k.name),
            throughput(opts.n_queries, min_secs, || {
                std::hint::black_box(sharded.search_batch_binary_with(k, &bin_refs).unwrap());
            }),
        ));
        results.push(Measurement::new(
            format!("int_batch_backend_{}", k.name),
            throughput(opts.n_queries, min_secs, || {
                std::hint::black_box(sharded.search_batch_int_with(k, &int_refs).unwrap());
            }),
        ));
    }
    std::env::remove_var("HYPERVEC_THREADS");
    let backend_qps = |name: &str| {
        results
            .iter()
            .find(|m| m.name == format!("binary_batch_backend_{name}"))
            .map(|m| m.queries_per_sec)
    };
    let scalar_backend_qps = backend_qps("scalar").expect("scalar backend always measured");
    let kernel_speedup_vs_scalar =
        backend_qps(kernel::name()).unwrap_or(scalar_backend_qps) / scalar_backend_qps;

    // Cross-check once: every rung must agree bit-for-bit on top-1.
    let hits = sharded.search_batch_binary(&bin_refs).unwrap();
    for (q, query) in bin_queries.iter().enumerate() {
        let batch = hits.best(q);
        assert_eq!(
            batch,
            infer::classify_binary_hv(&memory, query),
            "batch/word-parallel divergence at query {q}"
        );
        assert_eq!(
            batch,
            scalar_per_dim_nearest(&memory, query),
            "batch/scalar divergence at query {q}"
        );
    }

    let scalar = results[0].queries_per_sec;
    let wordparallel = results[1].queries_per_sec;
    // Exclude the per-backend probes (single-threaded, different
    // purpose) so this metric keeps meaning what it meant in PR 2:
    // the production batch path vs the scalar baseline.
    let batch_best = results
        .iter()
        .filter(|m| m.name.starts_with("binary_batch") && !m.name.contains("backend"))
        .map(|m| m.queries_per_sec)
        .fold(0.0f64, f64::max);
    let speedup = batch_best / scalar;
    let speedup_vs_wordparallel = batch_best / wordparallel;

    println!(
        "associative search throughput  (D = {}, C = {}, batch = {}, kernel backend = {})",
        opts.dim,
        opts.n_classes,
        opts.n_queries,
        kernel::name()
    );
    for m in &results {
        println!("  {:<32} {:>14.0} queries/s", m.name, m.queries_per_sec);
    }
    println!("  batch vs scalar speedup: {speedup:.1}x");
    println!("  batch vs word-parallel per-query: {speedup_vs_wordparallel:.2}x");
    println!(
        "  active kernel ({}) vs scalar backend on batch search: {kernel_speedup_vs_scalar:.2}x",
        kernel::name()
    );

    // Million-row top-k: exact heap scan vs coarse-probe pruning.
    println!(
        "building top-k corpus ({} rows × D = {}, {} planted families of {TOPK_FAMILY}) …",
        opts.topk_rows, opts.dim, opts.topk_queries
    );
    let topk = run_topk_section(&opts, &mut rng, min_secs);
    let speedup_pruned_vs_exact = topk.pruned_qps / topk.exact_qps;
    println!(
        "top-k search (rows = {}, k = {}, batch = {}, probe {} words × factor {})",
        opts.topk_rows,
        opts.topk_k,
        opts.topk_queries,
        topk.probe.probe_words,
        topk.probe.probe_factor
    );
    println!("  {:<32} {:>14.1} queries/s", "topk_exact", topk.exact_qps);
    println!(
        "  {:<32} {:>14.1} queries/s",
        "topk_pruned", topk.pruned_qps
    );
    println!(
        "  pruned vs exact: {speedup_pruned_vs_exact:.2}x at recall@{} = {:.4} \
         (full-width probe bit-identical to exact: {})",
        opts.topk_k, topk.recall_at_k, topk.full_width_bit_identical
    );

    // Int metric rollups: the blocked batch kernel vs the per-row
    // cosine scan measured in the same run (the int twin of
    // `speedup_batch_vs_scalar`), plus the single-thread active-backend
    // number against the PR 7 recorded baseline. The absolute-baseline
    // ratio is informational-floor-gated only — it compares across
    // machine states — while the in-run per-row ratio is what the
    // acceptance gate enforces.
    let rung = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.queries_per_sec)
            .expect("rung measured above")
    };
    let int_batch_qps = rung("int_batch_all_threads");
    let int_per_row_qps = rung("int_per_row_per_query");
    let speedup_int_batch_vs_per_row = int_batch_qps / int_per_row_qps;
    let int_backend_qps = results
        .iter()
        .find(|m| m.name == format!("int_batch_backend_{}", kernel::name()))
        .map_or(int_batch_qps, |m| m.queries_per_sec);
    let speedup_int_batch_vs_pr7_baseline = int_backend_qps / INT_PR7_BASELINE_QPS;
    println!(
        "  int batch vs per-row cosine scan: {speedup_int_batch_vs_per_row:.2}x \
         (vs PR 7 baseline {INT_PR7_BASELINE_QPS:.0} q/s: \
         {speedup_int_batch_vs_pr7_baseline:.2}x)"
    );

    // Million-row *int* top-k: exact strided scan vs quantized coarse
    // probe with exact rescore.
    println!(
        "building int top-k corpus ({} rows × D = {}, {} planted families of {TOPK_FAMILY}) …",
        opts.topk_rows, opts.int_dim, opts.topk_queries
    );
    let int_topk = run_int_topk_section(&opts, &mut rng, min_secs);
    let speedup_int_pruned_vs_exact = int_topk.pruned_qps / int_topk.exact_qps;
    println!(
        "int top-k search (rows = {}, k = {}, batch = {}, probe {} words × factor {})",
        opts.topk_rows,
        opts.topk_k,
        opts.topk_queries,
        int_topk.probe.probe_words,
        int_topk.probe.probe_factor
    );
    println!(
        "  {:<32} {:>14.1} queries/s",
        "int_topk_exact", int_topk.exact_qps
    );
    println!(
        "  {:<32} {:>14.1} queries/s",
        "int_topk_pruned", int_topk.pruned_qps
    );
    println!(
        "  pruned vs exact: {speedup_int_pruned_vs_exact:.2}x at recall@{} = {:.4} \
         (full-width probe bit-identical to exact: {})",
        opts.topk_k, int_topk.recall_at_k, int_topk.full_width_bit_identical
    );

    // Serving: boot the batching server on a loopback port and measure
    // sustained classify requests/sec end to end.
    let spec = DemoSpec::default();
    let model = demo_model(&spec);
    let session = model.session();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    let batch_config = BatchConfig::default();
    let load_config = LoadgenConfig {
        connections: opts.connections,
        requests_per_connection: opts.requests,
        seed: 2022,
        ..Default::default()
    };
    // Wire-format × pipelining grid on the same server: the JSON
    // serial run doubles as the classic "serving" section, and
    // binary+pipelined vs JSON serial is the acceptance metric
    // (`ci/bench_gates.json` requires ≥ 2×).
    const WIRE_PIPELINE: usize = 32;
    let wire_modes = [
        ("json_serial", WireMode::Json, 1usize),
        ("json_pipelined", WireMode::Json, WIRE_PIPELINE),
        ("binary_serial", WireMode::Binary, 1),
        ("binary_pipelined", WireMode::Binary, WIRE_PIPELINE),
    ];
    let (wire_reports, wire_bit_identical) = std::thread::scope(|s| {
        let server_thread = s.spawn(|| server::serve(listener, &session, &batch_config, &shutdown));
        let reports: Vec<(&str, hdc_serve::LoadReport)> = wire_modes
            .iter()
            .map(|&(name, wire_mode, pipeline)| {
                let report = loadgen::run(
                    addr,
                    session.n_features(),
                    session.m_levels(),
                    &LoadgenConfig {
                        wire: wire_mode,
                        pipeline,
                        ..load_config
                    },
                )
                .expect("load generation");
                (name, report)
            })
            .collect();
        let identical = wire_results_bit_identical(addr, &session);
        shutdown.store(true, Ordering::SeqCst);
        server_thread
            .join()
            .expect("server thread")
            .expect("server ran");
        (reports, identical)
    });
    assert!(
        wire_bit_identical,
        "JSON and binary wire answers diverged on the same rows"
    );
    let report = &wire_reports[0].1; // json_serial — the classic serving section
    let wire_rps = |name: &str| {
        wire_reports
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r.requests_per_sec)
            .expect("measured wire mode")
    };
    let speedup_binary_pipelined_vs_json_serial =
        wire_rps("binary_pipelined") / wire_rps("json_serial");
    let speedup_pipelined_vs_serial_binary =
        wire_rps("binary_pipelined") / wire_rps("binary_serial");
    let speedup_pipelined_vs_serial_json = wire_rps("json_pipelined") / wire_rps("json_serial");
    println!(
        "serving (D = {}, N = {}, C = {}): {:.0} requests/s, p50 {} µs, p99 {} µs ({} errors)",
        spec.dim,
        spec.n_features,
        spec.n_classes,
        report.requests_per_sec,
        report.latency.p50_micros,
        report.latency.p99_micros,
        report.errors
    );
    for (name, r) in &wire_reports {
        println!(
            "  wire {name:<18} {:>9.0} requests/s  p50 {} µs  p99 {} µs  ({} errors)",
            r.requests_per_sec, r.latency.p50_micros, r.latency.p99_micros, r.errors
        );
    }
    println!(
        "  binary+pipelined vs JSON serial: {speedup_binary_pipelined_vs_json_serial:.2}x \
         (batch results bit-identical across wires: {wire_bit_identical})"
    );

    // Concurrency: the event core's reason to exist. First a
    // threaded-core binary+pipelined baseline (the PR 5 shape — a
    // handful of sockets, deep pipelines), then the epoll core under
    // an open-loop fan-in of thousands of concurrent pipelined
    // sockets. The bench holds BOTH ends of every fan-in socket in
    // one process, so the fd budget is two descriptors per connection;
    // clamp loudly rather than die on EMFILE where the hard limit is
    // low.
    let fan_target = opts.fan_connections;
    let fd_limits = hdc_serve::epoll::raise_nofile_limit(fan_target as u64 * 2 + 128);
    let fan_connections = match fd_limits {
        Some((soft, _)) => fan_target.min((soft.saturating_sub(128) / 2) as usize),
        None => fan_target,
    };
    if fan_connections < fan_target {
        println!(
            "  (fd soft limit {} clamps fan-in from {fan_target} to {fan_connections} \
             connections)",
            fd_limits.map_or(0, |(soft, _)| soft),
        );
    }
    let threaded_baseline = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|s| {
            let server_thread = s.spawn(|| {
                server::serve_with_core(
                    CoreKind::Threaded,
                    listener,
                    &session,
                    &batch_config,
                    &shutdown,
                )
            });
            let report = loadgen::run(
                addr,
                session.n_features(),
                session.m_levels(),
                &LoadgenConfig {
                    wire: WireMode::Binary,
                    pipeline: WIRE_PIPELINE,
                    ..load_config
                },
            )
            .expect("threaded baseline load generation");
            shutdown.store(true, Ordering::SeqCst);
            server_thread
                .join()
                .expect("server thread")
                .expect("server ran");
            report
        })
    };
    // Deep pipelines and big batches are the event core's levers at
    // 10k-connection fan-in: per-connection windows keep the loop fed
    // between readiness events, and wide batches amortize the
    // per-batch queue/wakeup overhead across thousands of sockets.
    const FAN_PIPELINE: usize = 64;
    const FAN_MAX_BATCH: usize = 512;
    let fan_config = FanInConfig {
        connections: fan_connections,
        requests_per_connection: opts.fan_requests,
        pipeline: FAN_PIPELINE,
        wire: WireMode::Binary,
        seed: 2022,
        churn_every: None,
        search_k: None,
    };
    let fan_report = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = AtomicBool::new(false);
        let fan_batch = BatchConfig {
            max_batch: FAN_MAX_BATCH,
            max_connections: fan_connections + 16,
            ..batch_config
        };
        std::thread::scope(|s| {
            let server_thread =
                s.spawn(|| server::serve(listener, &session, &fan_batch, &shutdown));
            let report =
                loadgen::run_fan_in(addr, session.n_features(), session.m_levels(), &fan_config)
                    .expect("fan-in load generation");
            shutdown.store(true, Ordering::SeqCst);
            server_thread
                .join()
                .expect("server thread")
                .expect("server ran");
            report
        })
    };
    let vs_threaded_binary_pipelined =
        fan_report.requests_per_sec / threaded_baseline.requests_per_sec;
    println!(
        "serving concurrency: {fan_connections} connections open-loop (pipeline {}): \
         {:.0} requests/s, p50 {} µs, p99 {} µs ({} errors)",
        fan_config.pipeline,
        fan_report.requests_per_sec,
        fan_report.latency.p50_micros,
        fan_report.latency.p99_micros,
        fan_report.errors
    );
    println!(
        "  vs threaded-core binary+pipelined ({:.0} requests/s): \
         {vs_threaded_binary_pipelined:.2}x",
        threaded_baseline.requests_per_sec
    );

    // Telemetry overhead: identical binary+pipelined runs against a
    // metrics-off and a metrics-on server on the default core, best of
    // 3 each. The gate (`serving.telemetry.on_vs_off`) requires the
    // metrics-on throughput to stay within 3% of off.
    let telemetry_run = |metrics: Option<&hdc_serve::ServeMetrics>| -> f64 {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|s| {
            let server_thread = s.spawn(|| {
                server::serve_with_core_metrics(
                    CoreKind::default(),
                    listener,
                    &session,
                    &batch_config,
                    &shutdown,
                    metrics,
                )
            });
            let best = (0..3)
                .map(|_| {
                    loadgen::run(
                        addr,
                        session.n_features(),
                        session.m_levels(),
                        &LoadgenConfig {
                            wire: WireMode::Binary,
                            pipeline: WIRE_PIPELINE,
                            ..load_config
                        },
                    )
                    .expect("telemetry load generation")
                    .requests_per_sec
                })
                .fold(0.0f64, f64::max);
            shutdown.store(true, Ordering::SeqCst);
            server_thread
                .join()
                .expect("server thread")
                .expect("server ran");
            best
        })
    };
    let telemetry_metrics = hdc_serve::ServeMetrics::new();
    let telemetry_off_rps = telemetry_run(None);
    let telemetry_on_rps = telemetry_run(Some(&telemetry_metrics));
    let telemetry_on_vs_off = telemetry_on_rps / telemetry_off_rps;
    println!(
        "serving telemetry overhead (binary+pipelined, best of 3): \
         off {telemetry_off_rps:.0} requests/s, on {telemetry_on_rps:.0} requests/s \
         ({telemetry_on_vs_off:.3}x)"
    );

    // The hardening tax: encode throughput of one locked encoder in the
    // default cached mode (bound-pair table warm) vs the constant-time
    // hardened mode, single-row and batch, with the same encoder
    // switched between modes so the recorded `bit_identical` covers the
    // exact keys being timed. The gates pin bit_identical = 1 and a
    // floor on the throughput ratio; the tax is bounded by ~M× by
    // construction, so the ratio clears its floor with a wide margin.
    let lock_config = hdlock::LockConfig {
        n_features: 16,
        m_levels: 8,
        dim: opts.int_dim,
        pool_size: 16,
        n_layers: 2,
    };
    let mut lock_rng = HvRng::from_seed(0xD0C5);
    let mut hardened_victim =
        hdlock::LockedEncoder::generate(&mut lock_rng, &lock_config).expect("valid lock config");
    let lock_rows: Vec<Vec<u16>> = (0..64)
        .map(|r| {
            (0..lock_config.n_features)
                .map(|f| ((r + f) % lock_config.m_levels) as u16)
                .collect()
        })
        .collect();
    let lock_refs: Vec<&[u16]> = lock_rows.iter().map(Vec::as_slice).collect();
    let cached_encodes = hardened_victim.encode_batch_binary(&lock_refs); // warms the table
    let cached_eps = throughput(lock_refs.len(), min_secs, || {
        for r in &lock_refs {
            std::hint::black_box(hardened_victim.encode_binary(r));
        }
    });
    let cached_batch_rps = throughput(lock_refs.len(), min_secs, || {
        std::hint::black_box(hardened_victim.encode_batch_binary(&lock_refs));
    });
    hardened_victim.set_mode(hdlock::DeriveMode::Hardened);
    let hardened_bit_identical = u64::from(
        hardened_victim.encode_batch_binary(&lock_refs) == cached_encodes
            && lock_refs
                .iter()
                .map(|r| hardened_victim.encode_binary(r))
                .collect::<Vec<_>>()
                == cached_encodes,
    );
    let hardened_eps = throughput(lock_refs.len(), min_secs, || {
        for r in &lock_refs {
            std::hint::black_box(hardened_victim.encode_binary(r));
        }
    });
    let hardened_batch_rps = throughput(lock_refs.len(), min_secs, || {
        std::hint::black_box(hardened_victim.encode_batch_binary(&lock_refs));
    });
    let hardened_vs_cached_encode = hardened_eps / cached_eps;
    let hardened_vs_cached_batch = hardened_batch_rps / cached_batch_rps;
    println!(
        "hardened-mode tax (N = {}, M = {}, D = {}): single-row {cached_eps:.0} -> \
         {hardened_eps:.0} encodes/s ({hardened_vs_cached_encode:.3}x), batch \
         {cached_batch_rps:.0} -> {hardened_batch_rps:.0} rows/s \
         ({hardened_vs_cached_batch:.3}x), bit_identical = {hardened_bit_identical}",
        lock_config.n_features, lock_config.m_levels, lock_config.dim
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"dim\": {}, \"n_classes\": {}, \"batch\": {}, \"threads\": {} }},",
        opts.dim,
        opts.n_classes,
        opts.n_queries,
        hypervec::par::max_threads()
    );
    let backend_names: Vec<String> = backends.iter().map(|k| format!("\"{}\"", k.name)).collect();
    let _ = writeln!(
        json,
        "  \"kernel\": {{ \"backend\": \"{}\", \"available\": [{}], \
         \"batch_search_speedup_vs_scalar\": {kernel_speedup_vs_scalar:.2} }},",
        kernel::name(),
        backend_names.join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"queries_per_sec\": {:.1} }}{comma}",
            m.name, m.queries_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_batch_vs_scalar\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"speedup_batch_vs_wordparallel_per_query\": {speedup_vs_wordparallel:.2},"
    );
    let _ = writeln!(json, "  \"topk\": {{");
    let _ = writeln!(
        json,
        "    \"config\": {{ \"rows\": {}, \"k\": {}, \"queries\": {}, \"family\": {TOPK_FAMILY}, \
         \"noise\": {TOPK_NOISE}, \"probe_words\": {}, \"probe_factor\": {}, \
         \"exact_threshold\": {} }},",
        opts.topk_rows,
        opts.topk_k,
        opts.topk_queries,
        topk.probe.probe_words,
        topk.probe.probe_factor,
        topk.probe.exact_threshold
    );
    let _ = writeln!(
        json,
        "    \"exact_queries_per_sec\": {:.1},",
        topk.exact_qps
    );
    let _ = writeln!(
        json,
        "    \"pruned_queries_per_sec\": {:.1},",
        topk.pruned_qps
    );
    let _ = writeln!(
        json,
        "    \"speedup_pruned_vs_exact\": {speedup_pruned_vs_exact:.2},"
    );
    let _ = writeln!(json, "    \"recall_at_k\": {:.4},", topk.recall_at_k);
    let _ = writeln!(
        json,
        "    \"pruned_full_width_bit_identical\": {}",
        topk.full_width_bit_identical
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"int\": {{");
    let _ = writeln!(json, "    \"batch_queries_per_sec\": {int_batch_qps:.1},");
    let _ = writeln!(
        json,
        "    \"per_row_queries_per_sec\": {int_per_row_qps:.1},"
    );
    let _ = writeln!(
        json,
        "    \"speedup_int_batch_vs_per_row\": {speedup_int_batch_vs_per_row:.2},"
    );
    let _ = writeln!(
        json,
        "    \"speedup_int_batch_vs_pr7_baseline\": {speedup_int_batch_vs_pr7_baseline:.2},"
    );
    let _ = writeln!(json, "    \"topk\": {{");
    let _ = writeln!(
        json,
        "      \"config\": {{ \"rows\": {}, \"dim\": {}, \"k\": {}, \"queries\": {}, \
         \"family\": {TOPK_FAMILY}, \"noise\": {TOPK_NOISE}, \"probe_words\": {}, \
         \"probe_factor\": {}, \"exact_threshold\": {} }},",
        opts.topk_rows,
        opts.int_dim,
        opts.topk_k,
        opts.topk_queries,
        int_topk.probe.probe_words,
        int_topk.probe.probe_factor,
        int_topk.probe.exact_threshold
    );
    let _ = writeln!(
        json,
        "      \"exact_queries_per_sec\": {:.1},",
        int_topk.exact_qps
    );
    let _ = writeln!(
        json,
        "      \"pruned_queries_per_sec\": {:.1},",
        int_topk.pruned_qps
    );
    let _ = writeln!(
        json,
        "      \"speedup_pruned_vs_exact\": {speedup_int_pruned_vs_exact:.2},"
    );
    let _ = writeln!(json, "      \"recall_at_k\": {:.4},", int_topk.recall_at_k);
    let _ = writeln!(
        json,
        "      \"pruned_full_width_bit_identical\": {}",
        int_topk.full_width_bit_identical
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"serving\": {{");
    let _ = writeln!(
        json,
        "    \"config\": {{ \"dim\": {}, \"n_features\": {}, \"n_classes\": {}, \
         \"connections\": {}, \"requests_per_connection\": {}, \"max_batch\": {}, \
         \"max_wait_us\": {} }},",
        spec.dim,
        spec.n_features,
        spec.n_classes,
        load_config.connections,
        load_config.requests_per_connection,
        batch_config.max_batch,
        batch_config.max_wait.as_micros()
    );
    let _ = writeln!(
        json,
        "    \"requests_per_sec\": {:.1},",
        report.requests_per_sec
    );
    let _ = writeln!(json, "    \"errors\": {},", report.errors);
    let _ = writeln!(
        json,
        "    \"latency_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \
         \"mean\": {:.1} }},",
        report.latency.p50_micros,
        report.latency.p95_micros,
        report.latency.p99_micros,
        report.latency.max_micros,
        report.latency.mean_micros
    );
    let _ = writeln!(json, "    \"wire\": {{");
    let _ = writeln!(
        json,
        "      \"config\": {{ \"connections\": {}, \"requests_per_connection\": {}, \
         \"pipeline\": {WIRE_PIPELINE} }},",
        load_config.connections, load_config.requests_per_connection
    );
    let _ = writeln!(json, "      \"modes\": [");
    for (i, (name, r)) in wire_reports.iter().enumerate() {
        let comma = if i + 1 == wire_reports.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "        {{ \"name\": \"{name}\", \"requests_per_sec\": {:.1}, \
             \"errors\": {}, \"p50_us\": {}, \"p99_us\": {} }}{comma}",
            r.requests_per_sec, r.errors, r.latency.p50_micros, r.latency.p99_micros
        );
    }
    let _ = writeln!(json, "      ],");
    let _ = writeln!(
        json,
        "      \"speedup_binary_pipelined_vs_json_serial\": \
         {speedup_binary_pipelined_vs_json_serial:.2},"
    );
    let _ = writeln!(
        json,
        "      \"speedup_pipelined_vs_serial_binary\": {speedup_pipelined_vs_serial_binary:.2},"
    );
    let _ = writeln!(
        json,
        "      \"speedup_pipelined_vs_serial_json\": {speedup_pipelined_vs_serial_json:.2},"
    );
    let _ = writeln!(
        json,
        "      \"batch_bit_identical_across_wires\": {wire_bit_identical}"
    );
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"telemetry\": {{");
    let _ = writeln!(
        json,
        "      \"off_requests_per_sec\": {telemetry_off_rps:.1},"
    );
    let _ = writeln!(
        json,
        "      \"on_requests_per_sec\": {telemetry_on_rps:.1},"
    );
    let _ = writeln!(json, "      \"on_vs_off\": {telemetry_on_vs_off:.3}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"concurrency\": {{");
    let _ = writeln!(
        json,
        "      \"config\": {{ \"connections_target\": {fan_target}, \
         \"requests_per_connection\": {}, \"pipeline\": {}, \"wire\": \"binary\", \
         \"max_batch\": {FAN_MAX_BATCH}, \"fd_soft_limit\": {} }},",
        fan_config.requests_per_connection,
        fan_config.pipeline,
        fd_limits.map_or(0, |(soft, _)| soft)
    );
    let _ = writeln!(json, "      \"connections\": {fan_connections},");
    let _ = writeln!(
        json,
        "      \"requests_per_sec\": {:.1},",
        fan_report.requests_per_sec
    );
    let _ = writeln!(json, "      \"errors\": {},", fan_report.errors);
    let _ = writeln!(
        json,
        "      \"error_free\": {},",
        u64::from(fan_report.errors == 0)
    );
    let _ = writeln!(
        json,
        "      \"latency_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},",
        fan_report.latency.p50_micros,
        fan_report.latency.p95_micros,
        fan_report.latency.p99_micros,
        fan_report.latency.max_micros
    );
    let _ = writeln!(
        json,
        "      \"threaded_binary_pipelined_requests_per_sec\": {:.1},",
        threaded_baseline.requests_per_sec
    );
    let _ = writeln!(
        json,
        "      \"vs_threaded_binary_pipelined\": {vs_threaded_binary_pipelined:.2}"
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"security\": {{");
    let _ = writeln!(json, "    \"hardened\": {{");
    let _ = writeln!(
        json,
        "      \"config\": {{ \"n_features\": {}, \"m_levels\": {}, \"dim\": {}, \
         \"pool_size\": {}, \"n_layers\": {} }},",
        lock_config.n_features,
        lock_config.m_levels,
        lock_config.dim,
        lock_config.pool_size,
        lock_config.n_layers
    );
    let _ = writeln!(json, "      \"cached_encodes_per_sec\": {cached_eps:.1},");
    let _ = writeln!(
        json,
        "      \"hardened_encodes_per_sec\": {hardened_eps:.1},"
    );
    let _ = writeln!(
        json,
        "      \"hardened_vs_cached_encode\": {hardened_vs_cached_encode:.4},"
    );
    let _ = writeln!(
        json,
        "      \"cached_batch_rows_per_sec\": {cached_batch_rps:.1},"
    );
    let _ = writeln!(
        json,
        "      \"hardened_batch_rows_per_sec\": {hardened_batch_rps:.1},"
    );
    let _ = writeln!(
        json,
        "      \"hardened_vs_cached_batch\": {hardened_vs_cached_batch:.4},"
    );
    let _ = writeln!(json, "      \"bit_identical\": {hardened_bit_identical}");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&opts.out, json).expect("write benchmark JSON");
    println!("(json written to {})", opts.out);
}
