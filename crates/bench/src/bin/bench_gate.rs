//! Benchmark regression gate: parses the `BENCH_*.json` artifacts the
//! bench bins wrote and fails (exit code 1) when any recorded speedup
//! drops below its acceptance threshold.
//!
//! Thresholds live in one checked-in file, `ci/bench_gates.json` —
//! each gate names a bench artifact, a dotted path to a metric inside
//! it, and the minimum acceptable value — so CI enforces them by
//! *parsing* the recorded numbers, not by shell-grepping logs.
//!
//! Usage: `bench_gate [--gates ci/bench_gates.json] [--dir .]`
//! (`--dir` is where the `BENCH_*.json` artifacts live).

use std::process::ExitCode;

use serde_json::Value;

struct Options {
    gates: String,
    dir: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            gates: "ci/bench_gates.json".to_owned(),
            dir: ".".to_owned(),
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--gates" => opts.gates = value(i),
            "--dir" => opts.dir = value(i),
            other => panic!("unknown argument '{other}'; supported: --gates --dir"),
        }
        i += 2;
    }
    opts
}

/// Follows a dotted path (`serving.wire.speedup_…`) through a parsed
/// JSON tree.
fn lookup<'a>(root: &'a Value, path: &str) -> Option<&'a Value> {
    let mut node = root;
    for key in path.split('.') {
        node = node.get(key)?;
    }
    Some(node)
}

fn main() -> ExitCode {
    let opts = parse_options();
    let gates_text = std::fs::read_to_string(&opts.gates)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", opts.gates));
    let gates_json: Value = serde_json::from_str(&gates_text)
        .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", opts.gates));
    let gates = gates_json
        .get("gates")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{} has no `gates` array", opts.gates));

    let mut failures = 0usize;
    let mut checked = 0usize;
    for gate in gates {
        let file = gate
            .get("file")
            .and_then(Value::as_str)
            .expect("gate needs a `file`");
        let metric = gate
            .get("metric")
            .and_then(Value::as_str)
            .expect("gate needs a `metric` path");
        let min = gate
            .get("min")
            .and_then(Value::as_f64)
            .expect("gate needs a numeric `min`");
        let label = gate.get("label").and_then(Value::as_str).unwrap_or(metric);

        let path = std::path::Path::new(&opts.dir).join(file);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                println!("FAIL  {label}: cannot read {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let root: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                println!("FAIL  {label}: {} is not valid JSON: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let Some(value) = lookup(&root, metric).and_then(Value::as_f64) else {
            println!("FAIL  {label}: {file} has no numeric `{metric}`");
            failures += 1;
            continue;
        };
        checked += 1;
        if value < min {
            println!("FAIL  {label}: {value:.2} < {min:.2}  ({file} · {metric})");
            failures += 1;
        } else {
            println!("ok    {label}: {value:.2} >= {min:.2}");
        }
    }

    println!(
        "bench-gate: {checked} metrics checked, {failures} below threshold \
         (gates from {})",
        opts.gates
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
