//! Model persistence benchmark with machine-readable output.
//!
//! Measures save/load wall time and on-disk size of the binary
//! snapshot format (`hdc_store`) against the JSON `SavedModel` path at
//! paper scale (`D = 10 000`), for the standard model (both formats)
//! and the locked model (binary + sealed key segment — JSON has no
//! locked path, which is part of the point). Then boots the
//! registry-backed server and drives a closed-loop load while a live
//! `rekey` swap lands, reporting the p99 latency and the error count
//! across the swap. Writes `BENCH_persist.json` next to
//! `BENCH_encoding.json` / `BENCH_search.json` in the CI bench
//! artifact.
//!
//! Usage: `bench_persist [--dim D] [--features N] [--classes C]
//! [--connections K] [--requests R] [--out PATH]` — defaults reproduce
//! the acceptance configuration (`D = 10 000`, locked binary load ≥ 3×
//! faster and ≥ 2× smaller than JSON).

use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use hdc_model::HdcModel;
use hdc_serve::demo::{self, DemoSpec};
use hdc_serve::{loadgen, protocol, server, LoadgenConfig, RegistryServeConfig};
use hdc_store::{KeySegment, ModelRegistry, ModelSnapshot, RekeySource};

struct Options {
    dim: usize,
    n_features: usize,
    n_classes: usize,
    connections: usize,
    requests: usize,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            dim: 10_000,
            n_features: 16,
            n_classes: 8,
            connections: 16,
            requests: 400,
            out: "BENCH_persist.json".to_owned(),
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--dim" => opts.dim = value(i).parse().expect("--dim needs an integer"),
            "--features" => {
                opts.n_features = value(i).parse().expect("--features needs an integer")
            }
            "--classes" => opts.n_classes = value(i).parse().expect("--classes needs an integer"),
            "--connections" => {
                opts.connections = value(i).parse().expect("--connections needs an integer")
            }
            "--requests" => opts.requests = value(i).parse().expect("--requests needs an integer"),
            "--out" => opts.out = value(i),
            other => panic!(
                "unknown argument '{other}'; supported: --dim --features --classes \
                 --connections --requests --out"
            ),
        }
        i += 2;
    }
    opts
}

/// Runs `work` repeatedly until ≥ `min_secs` of wall clock is spent,
/// returning seconds per call.
fn time_per_call(min_secs: f64, mut work: impl FnMut()) -> f64 {
    work(); // warm-up
    let mut calls = 0usize;
    let start = Instant::now();
    loop {
        work();
        calls += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    start.elapsed().as_secs_f64() / calls as f64
}

fn main() {
    let opts = parse_options();
    let spec = DemoSpec {
        dim: opts.dim,
        n_features: opts.n_features,
        n_classes: opts.n_classes,
        m_levels: 8,
        train_size: 256,
        seed: 2022,
    };
    let min_secs = 0.3;

    println!(
        "training standard + locked models (D = {}, N = {}, C = {}) …",
        opts.dim, opts.n_features, opts.n_classes
    );
    let standard = demo::demo_model(&spec);
    let (locked, train) = demo::demo_locked_model(&spec, 2);

    // --- JSON SavedModel path (standard models only) ----------------
    let json = standard.to_json().expect("serialize");
    let json_bytes = json.len();
    let json_save = time_per_call(min_secs, || {
        std::hint::black_box(standard.to_json().expect("serialize"));
    });
    let json_load = time_per_call(min_secs, || {
        std::hint::black_box(HdcModel::from_json(&json).expect("deserialize"));
    });

    // --- Binary snapshot, standard model ----------------------------
    let std_snapshot = ModelSnapshot::from_standard_model(&standard);
    let std_bin = std_snapshot.to_bytes();
    let std_bin_bytes = std_bin.len();
    let std_bin_save = time_per_call(min_secs, || {
        std::hint::black_box(ModelSnapshot::from_standard_model(&standard).to_bytes());
    });
    let std_bin_load = time_per_call(min_secs, || {
        let (snap, _) = ModelSnapshot::from_bytes(&std_bin).expect("decode");
        std::hint::black_box(snap.into_session(None).expect("assemble"));
    });

    // --- Binary snapshot + sealed key segment, locked model ---------
    let locked_snapshot = ModelSnapshot::from_locked_model(&locked);
    let key = KeySegment::from_locked_encoder(locked.encoder()).expect("vault sealed");
    let locked_bin = locked_snapshot.to_bytes();
    let key_bin = key.to_bytes();
    let locked_bin_bytes = locked_bin.len() + key_bin.len();
    let locked_bin_save = time_per_call(min_secs, || {
        std::hint::black_box(ModelSnapshot::from_locked_model(&locked).to_bytes());
    });
    let locked_bin_load = time_per_call(min_secs, || {
        let (snap, _) = ModelSnapshot::from_bytes(&locked_bin).expect("decode");
        let seg = KeySegment::from_bytes(&key_bin).expect("decode key");
        std::hint::black_box(snap.into_session(Some(&seg)).expect("assemble"));
    });

    let load_speedup = json_load / locked_bin_load;
    let size_ratio = json_bytes as f64 / locked_bin_bytes as f64;

    println!("persistence (D = {}):", opts.dim);
    println!(
        "  json_standard    save {:>8.3} ms  load {:>8.3} ms  {:>9} bytes",
        json_save * 1e3,
        json_load * 1e3,
        json_bytes
    );
    println!(
        "  binary_standard  save {:>8.3} ms  load {:>8.3} ms  {:>9} bytes",
        std_bin_save * 1e3,
        std_bin_load * 1e3,
        std_bin_bytes
    );
    println!(
        "  binary_locked    save {:>8.3} ms  load {:>8.3} ms  {:>9} bytes (incl. key segment)",
        locked_bin_save * 1e3,
        locked_bin_load * 1e3,
        locked_bin_bytes
    );
    println!("  locked binary load vs JSON load: {load_speedup:.1}x faster");
    println!("  locked binary size vs JSON size: {size_ratio:.1}x smaller");

    // --- Reload (rekey) under closed-loop load ----------------------
    let registry = ModelRegistry::from_snapshot(locked_snapshot, Some(&key))
        .expect("snapshot is self-consistent")
        .with_rekey_source(RekeySource {
            config: demo::demo_config(&spec),
            train,
        });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    let serve_config = RegistryServeConfig::default();
    let load_config = LoadgenConfig {
        connections: opts.connections,
        requests_per_connection: opts.requests,
        seed: 2022,
        ..Default::default()
    };
    let (report, swaps) = std::thread::scope(|s| {
        let server_thread =
            s.spawn(|| server::serve_registry(listener, &registry, &serve_config, &shutdown));
        let load = s.spawn(|| {
            loadgen::run(addr, spec.n_features, spec.m_levels, &load_config).expect("loadgen")
        });
        // Land two live rekeys while the load runs.
        let mut swaps = 0u64;
        for seed in [31_337u64, 31_338] {
            std::thread::sleep(std::time::Duration::from_millis(30));
            use std::io::{BufRead, BufReader, Write};
            let stream = std::net::TcpStream::connect(addr).expect("admin connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            writer
                .write_all(protocol::rekey_request_line(seed, seed).as_bytes())
                .expect("send rekey");
            let mut line = String::new();
            reader.read_line(&mut line).expect("rekey response");
            let resp = protocol::parse_response(&line).expect("parse");
            assert!(resp.swapped.is_some(), "rekey failed: {resp:?}");
            swaps += 1;
        }
        let report = load.join().expect("loadgen thread");
        shutdown.store(true, Ordering::SeqCst);
        server_thread
            .join()
            .expect("server thread")
            .expect("server ran");
        (report, swaps)
    });
    assert_eq!(
        report.errors, 0,
        "requests failed across {swaps} live rekeys"
    );
    println!(
        "reload-under-load (D = {}, {} rekeys mid-run): {:.0} req/s, p50 {} µs, p99 {} µs, \
         {} errors over {} requests",
        opts.dim,
        swaps,
        report.requests_per_sec,
        report.latency.p50_micros,
        report.latency.p99_micros,
        report.errors,
        report.total_requests
    );

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"dim\": {}, \"n_features\": {}, \"n_classes\": {}, \
         \"m_levels\": {}, \"train_size\": {} }},",
        opts.dim, opts.n_features, opts.n_classes, spec.m_levels, spec.train_size
    );
    let fmt = |name: &str, save: f64, load: f64, bytes: usize, comma: &str| {
        format!(
            "    {{ \"name\": \"{name}\", \"save_ms\": {:.3}, \"load_ms\": {:.3}, \
             \"bytes\": {bytes} }}{comma}",
            save * 1e3,
            load * 1e3
        )
    };
    let _ = writeln!(out, "  \"formats\": [");
    let _ = writeln!(
        out,
        "{}",
        fmt("json_standard", json_save, json_load, json_bytes, ",")
    );
    let _ = writeln!(
        out,
        "{}",
        fmt(
            "binary_standard",
            std_bin_save,
            std_bin_load,
            std_bin_bytes,
            ","
        )
    );
    let _ = writeln!(
        out,
        "{}",
        fmt(
            "binary_locked",
            locked_bin_save,
            locked_bin_load,
            locked_bin_bytes,
            ""
        )
    );
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"locked_binary_load_speedup_vs_json\": {load_speedup:.2},"
    );
    let _ = writeln!(
        out,
        "  \"locked_binary_size_ratio_vs_json\": {size_ratio:.2},"
    );
    let _ = writeln!(out, "  \"reload_under_load\": {{");
    let _ = writeln!(
        out,
        "    \"config\": {{ \"connections\": {}, \"requests_per_connection\": {}, \
         \"rekeys_mid_run\": {swaps} }},",
        load_config.connections, load_config.requests_per_connection
    );
    let _ = writeln!(
        out,
        "    \"requests_per_sec\": {:.1},",
        report.requests_per_sec
    );
    let _ = writeln!(out, "    \"errors\": {},", report.errors);
    let _ = writeln!(
        out,
        "    \"latency_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \
         \"mean\": {:.1} }}",
        report.latency.p50_micros,
        report.latency.p95_micros,
        report.latency.p99_micros,
        report.latency.max_micros,
        report.latency.mean_micros
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    std::fs::write(&opts.out, out).expect("write benchmark JSON");
    println!("(json written to {})", opts.out);
}
