//! Fig. 8 — inference accuracy vs number of key layers `L ∈ 0..=5` for
//! all five benchmarks, (a) non-binary and (b) binary record-based
//! encoding. `L = 0` is the unprotected baseline.
//!
//! Paper claim: HDLock causes **no observable accuracy loss** at any
//! `L`, because derived feature hypervectors keep the orthogonality and
//! the input↔output correspondence of the standard encoder.

use hdc_datasets::{Benchmark, Discretizer};
use hdc_model::{evaluate, train, HdcConfig, ModelKind};
use hdlock::{LockConfig, LockedEncoder};
use hdlock_bench::{fmt_f, RunOptions, TextTable};
use hypervec::HvRng;

fn main() {
    let opts = RunOptions::from_args(RunOptions {
        scale: 0.2,
        ..RunOptions::default()
    });
    println!("Fig. 8 reproduction: accuracy vs key layers");
    println!(
        "D = {}, M = 16, dataset scale = {} (use --full for paper-like sizes)\n",
        opts.dim, opts.scale
    );

    let layer_range: Vec<usize> = (0..=5).collect();
    for kind in [ModelKind::NonBinary, ModelKind::Binary] {
        println!(
            "== ({}) {kind} record-based encoding ==",
            match kind {
                ModelKind::NonBinary => "a",
                ModelKind::Binary => "b",
            }
        );
        let mut t = TextTable::new(
            std::iter::once("benchmark".to_owned())
                .chain(layer_range.iter().map(|l| format!("L = {l}")))
                .chain(std::iter::once("max |Δ| vs L = 0".to_owned()))
                .collect::<Vec<_>>(),
        );
        for bench in Benchmark::ALL {
            let (train_ds, test_ds) = bench
                .generate(opts.scale, opts.seed)
                .expect("benchmark generation");
            let config = HdcConfig {
                dim: opts.dim,
                m_levels: 16,
                kind,
                epochs: 2,
                learning_rate: 1,
                seed: opts.seed,
            };
            let disc = Discretizer::fit(&train_ds, config.m_levels).expect("quantizer");
            let train_q = disc.discretize(&train_ds).expect("quantize train");
            let test_q = disc.discretize(&test_ds).expect("quantize test");

            let mut accs = Vec::new();
            for &l in &layer_range {
                // A fresh encoder per L, same data/seed discipline as the paper.
                let mut rng = HvRng::from_seed(opts.seed ^ (l as u64 + 1));
                let lock_cfg = LockConfig {
                    n_features: train_q.n_features(),
                    m_levels: config.m_levels,
                    dim: config.dim,
                    pool_size: train_q.n_features(),
                    n_layers: l,
                };
                let encoder = LockedEncoder::generate(&mut rng, &lock_cfg).expect("encoder");
                let memory = train(&encoder, &config, &train_q);
                accs.push(evaluate(&encoder, &memory, &test_q).accuracy);
            }
            let max_delta = accs
                .iter()
                .map(|a| (a - accs[0]).abs())
                .fold(0.0f64, f64::max);
            let mut row = vec![bench.to_string()];
            row.extend(accs.iter().map(|a| fmt_f(*a, 4)));
            row.push(fmt_f(max_delta, 4));
            t.row(row);
        }
        t.emit(opts.csv.as_deref());
    }
    println!("paper shape check: every row is flat — no observable accuracy drop at any L.");
}
