//! Calibration sweep for the synthetic benchmark difficulty.
//!
//! Sweeps the `class_distinctness` knob of each benchmark's generator
//! and reports binary-HDC accuracy, to pick per-benchmark values that
//! land in the paper's reported accuracy band (Tab. 1: MNIST 0.80,
//! UCIHAR 0.82, FACE 0.94, ISOLET 0.87, PAMAP 0.82). Not part of the
//! paper — a maintenance tool for the reproduction itself.

use hdc_datasets::Benchmark;
use hdc_model::{HdcConfig, HdcModel, ModelKind};
use hdlock_bench::{fmt_f, RunOptions, TextTable};
use hypervec::HvRng;

fn main() {
    let opts = RunOptions::from_args(RunOptions {
        scale: 0.05,
        ..RunOptions::default()
    });
    let betas = [0.25, 0.30, 0.35, 0.40, 0.50, 0.60];
    println!(
        "class_distinctness calibration (binary HDC, D = {}, scale = {})\n",
        opts.dim, opts.scale
    );
    let mut t = TextTable::new(
        std::iter::once("benchmark".to_owned())
            .chain(betas.iter().map(|b| format!("β = {b}")))
            .collect::<Vec<_>>(),
    );
    for bench in Benchmark::ALL {
        let mut row = vec![bench.to_string()];
        for &beta in &betas {
            let mut spec = bench.spec().scaled(opts.scale);
            spec.class_distinctness = beta;
            let mut rng = HvRng::from_seed(opts.seed ^ bench.n_features() as u64);
            let (train_ds, test_ds) = spec.generate(&mut rng).expect("generation");
            let config = HdcConfig {
                dim: opts.dim,
                m_levels: 16,
                kind: ModelKind::Binary,
                epochs: 2,
                learning_rate: 1,
                seed: opts.seed,
            };
            let model = HdcModel::fit_standard(&config, &train_ds).expect("training");
            let acc = model.evaluate(&test_ds).expect("evaluation").accuracy;
            row.push(fmt_f(acc, 3));
        }
        t.row(row);
    }
    t.emit(opts.csv.as_deref());
}
