//! Ablations of the design choices called out in `DESIGN.md` §4 —
//! everything that is a *choice* in this reproduction, measured.
//!
//! 1. `sign(0)` tie-break policy: does the attack care?
//! 2. Divide-and-conquer candidate restriction: guess-count halving.
//! 3. LockedEncoder derivation mode: vault traffic per sample.
//! 4. Attack criterion support: Eq. 13's restriction to `I` vs whole-
//!    vector scoring.
//! 5. Value-lock dilemma (paper Sec. 4.1): linearity vs order leak.

use hdc_attack::{
    extract_features, extract_values, sweep_parameter, CountingOracle, FeatureExtractOptions,
    LockProbe, StandardDump, SweptParam,
};
use hdc_model::{Encoder, ModelKind, RecordEncoder};
use hdlock::{
    analyze_value_locking, BasePool, DeriveMode, EncodingKey, LockConfig, LockedEncoder,
    ValueLockStrategy,
};
use hdlock_bench::{fmt_f, RunOptions, TextTable};
use hypervec::{HvRng, LevelHvs};

fn main() {
    let opts = RunOptions::from_args(RunOptions {
        dim: 4096,
        ..RunOptions::default()
    });
    println!(
        "Ablation studies (D = {}, seed = {})\n",
        opts.dim, opts.seed
    );
    tie_break_policy(&opts);
    candidate_restriction(&opts);
    derivation_mode(&opts);
    criterion_support(&opts);
    value_lock_dilemma(&opts);
}

/// 1. Random vs deterministic `sign(0)`: the attack flow is identical;
///    with an even feature count ties exist and random tie-break injects
///    noise into the oracle — measure whether recovery survives.
fn tie_break_policy(opts: &RunOptions) {
    println!("== 1. sign(0) tie-break policy (even N = 64 maximizes ties) ==");
    let mut rng = HvRng::from_seed(opts.seed);
    let enc = RecordEncoder::generate(&mut rng, 64, 8, opts.dim).expect("encoder");
    let (dump, _) = StandardDump::from_encoder(&enc, &mut rng);
    let oracle = CountingOracle::new(&enc);
    let values = extract_values(&oracle, &dump, ModelKind::Binary).expect("values");
    // Count how many dimensions of the all-min output were ties
    let sum = dump.feature_pool.sum().expect("sum");
    let ties = sum.count_zeros();
    println!(
        "  Σ FeaHV has {ties} zero dimensions ({:.2}% of D) — the Eq. 6 estimate is",
        100.0 * ties as f64 / opts.dim as f64
    );
    println!(
        "  exact elsewhere; value mapping still recovered: {}\n",
        values.order.len() == 8
    );
}

/// 2. Guess counts with and without removing assigned candidates.
fn candidate_restriction(opts: &RunOptions) {
    println!("== 2. divide-and-conquer candidate restriction ==");
    let mut t = TextTable::new(vec!["variant", "guesses (N = 48)", "complexity model"]);
    let mut rng = HvRng::from_seed(opts.seed ^ 1);
    let enc = RecordEncoder::generate(&mut rng, 48, 4, opts.dim).expect("encoder");
    let (dump, _) = StandardDump::from_encoder(&enc, &mut rng);
    for (name, restrict, model) in [
        ("paper (all candidates)", false, "N² = 2304"),
        ("restricted (ours)", true, "N(N+1)/2 = 1176"),
    ] {
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::Binary).expect("values");
        let features = extract_features(
            &oracle,
            &dump,
            &values,
            ModelKind::Binary,
            FeatureExtractOptions {
                restrict_to_unassigned: restrict,
            },
        )
        .expect("features");
        t.row(vec![
            name.to_owned(),
            features.stats.guesses.to_string(),
            model.to_owned(),
        ]);
    }
    t.emit(None);
}

/// 3. Vault reads per encoded sample in the two derivation modes.
fn derivation_mode(opts: &RunOptions) {
    println!("== 3. locked-encoder derivation mode (vault traffic) ==");
    let cfg = LockConfig {
        n_features: 32,
        m_levels: 8,
        dim: opts.dim,
        pool_size: 32,
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(opts.seed ^ 2);
    let mut enc = LockedEncoder::generate(&mut rng, &cfg).expect("encoder");
    let row = vec![0u16; 32];
    let before = enc.vault().reads();
    for _ in 0..100 {
        let _ = enc.encode_binary(&row);
    }
    let cached_reads = enc.vault().reads() - before;
    enc.set_mode(DeriveMode::OnTheFly);
    let before = enc.vault().reads();
    for _ in 0..100 {
        let _ = enc.encode_binary(&row);
    }
    let otf_reads = enc.vault().reads() - before;
    println!("  cached:     {cached_reads} privileged reads / 100 samples");
    println!("  on-the-fly: {otf_reads} privileged reads / 100 samples");
    println!("  (hardware recomputing per sample never leaves derived state in plain memory)\n");
}

/// 4. Eq. 13 restricts the criterion to the differing index set `I`.
///    Score the same sweeps on the whole vector instead: wrong guesses all
///    collapse towards the baseline distance and the margin shrinks by
///    |I|/D — the restriction is what makes single-parameter validation
///    observable at all.
fn criterion_support(opts: &RunOptions) {
    println!("== 4. attack criterion support: restricted to I vs whole vector ==");
    let cfg = LockConfig {
        n_features: 63,
        m_levels: 8,
        dim: opts.dim,
        pool_size: 63,
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(opts.seed ^ 3);
    let pool = BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
    let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels).expect("levels");
    let key =
        EncodingKey::random(&mut rng, cfg.n_features, 2, cfg.pool_size, cfg.dim).expect("key");
    let enc = LockedEncoder::from_parts(pool.clone(), values.clone(), key.clone()).expect("enc");
    let oracle = CountingOracle::new(&enc);
    let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary).expect("probe");
    let sweep = sweep_parameter(
        &probe,
        &pool,
        key.feature(0),
        SweptParam::BaseIndex { layer: 0 },
        cfg.dim,
        1,
    )
    .expect("sweep");
    let support_frac = probe.support() as f64 / cfg.dim as f64;
    println!(
        "  |I| = {} ({:.2}% of D)",
        probe.support(),
        100.0 * support_frac
    );
    println!(
        "  restricted criterion margin: {} (correct) vs {} (best wrong)",
        fmt_f(sweep.correct_score(), 3),
        fmt_f(sweep.best_wrong_score(), 3)
    );
    println!(
        "  whole-vector equivalent margin would be ≈ {} — buried in the baseline.\n",
        fmt_f(sweep.best_wrong_score() * support_frac, 4)
    );
}

/// 5. The Sec. 4.1 dilemma, numerically.
fn value_lock_dilemma(opts: &RunOptions) {
    println!("== 5. value-hypervector locking dilemma (paper Sec. 4.1) ==");
    let mut t = TextTable::new(vec![
        "strategy",
        "linearity error",
        "order leak (no oracle)",
    ]);
    for strategy in [
        ValueLockStrategy::SharedRotation,
        ValueLockStrategy::IndependentRotations,
    ] {
        let mut rng = HvRng::from_seed(opts.seed ^ 4);
        let a = analyze_value_locking(&mut rng, opts.dim, 8, strategy);
        t.row(vec![
            format!("{strategy:?}"),
            fmt_f(a.linearity_error, 4),
            fmt_f(a.order_leak, 2),
        ]);
    }
    t.emit(None);
    println!("either the encoder breaks (linearity) or the lock is free to invert (leak);");
    println!("this is why HDLock locks only the feature hypervectors.");
}
