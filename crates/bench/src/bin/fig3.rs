//! Fig. 3 — Hamming distances of all feature-mapping guesses against
//! the ground truth on a standard (unprotected) binary HDC encoder.
//!
//! Paper setup: MNIST (`N = 784`, `D = 10 000`), probe = first pixel at
//! white, rest black. The correct guess sits near distance 0 while
//! wrong guesses cluster around 0.005–0.025 — making the mapping
//! trivially identifiable.

use hdc_attack::{extract_values, guess_profile, CountingOracle, StandardDump};
use hdc_model::{ModelKind, RecordEncoder};
use hdlock_bench::{fmt_f, summarize, RunOptions, TextTable};
use hypervec::HvRng;

fn main() {
    let opts = RunOptions::from_args(RunOptions::default());
    let n = 784;
    let m = 16;
    println!("Fig. 3 reproduction: guess-distance profile, standard binary HDC");
    println!(
        "N = {n} features, M = {m} levels, D = {} dimensions, seed = {}\n",
        opts.dim, opts.seed
    );

    let mut rng = HvRng::from_seed(opts.seed);
    let encoder = RecordEncoder::generate(&mut rng, n, m, opts.dim).expect("valid shape");
    let (dump, truth) = StandardDump::from_encoder(&encoder, &mut rng);
    let oracle = CountingOracle::new(&encoder);

    let values = extract_values(&oracle, &dump, ModelKind::Binary).expect("value extraction");
    // Attack the first pixel, exactly like the paper.
    let profile = guess_profile(&oracle, &dump, &values, ModelKind::Binary, 0).expect("profile");

    let true_row = truth
        .feature_perm
        .iter()
        .position(|&orig| orig == 0)
        .expect("true row exists");
    let wrong: Vec<f64> = profile
        .iter()
        .enumerate()
        .filter(|&(r, _)| r != true_row)
        .map(|(_, &d)| d)
        .collect();
    let wrong_summary = summarize(&wrong);

    let mut t = TextTable::new(vec!["series", "tries", "min dist", "mean dist", "max dist"]);
    t.row(vec![
        "correct guess".to_owned(),
        "1".to_owned(),
        fmt_f(profile[true_row], 4),
        fmt_f(profile[true_row], 4),
        fmt_f(profile[true_row], 4),
    ]);
    t.row(vec![
        "wrong guesses".to_owned(),
        format!("{}", wrong.len()),
        fmt_f(wrong_summary.min, 4),
        fmt_f(wrong_summary.mean, 4),
        fmt_f(wrong_summary.max, 4),
    ]);
    t.emit(opts.csv.as_deref());

    println!(
        "separation: correct = {} vs best wrong = {} ({}x margin)",
        fmt_f(profile[true_row], 4),
        fmt_f(wrong_summary.min, 4),
        if profile[true_row] == 0.0 {
            "inf".to_owned()
        } else {
            fmt_f(wrong_summary.min / profile[true_row], 1)
        }
    );
    println!(
        "\npaper: correct guess ≪ wrong guesses (wrong cluster ≈ 0.005–0.025); reproduced: {}",
        if profile[true_row] < wrong_summary.min / 5.0 {
            "YES"
        } else {
            "NO"
        }
    );

    // Print the first 20 points of the series (row order = try order).
    println!("\nfirst 20 tries (normalized Hamming distance):");
    for (r, &d) in profile.iter().take(20).enumerate() {
        let marker = if r == true_row { "  <-- correct" } else { "" };
        println!("  try {r:3}: {}{marker}", fmt_f(d, 4));
    }
}
