//! Table 1 — reasoning attack on all five benchmarks: original vs
//! recovered model accuracy and reasoning time, for non-binary and
//! binary HDC models.
//!
//! Shape expectations from the paper: recovered accuracy ≈ original
//! accuracy on every benchmark (the mapping leaks completely), and
//! reasoning time ordered PAMAP ≪ UCIHAR < ISOLET < MNIST < FACE
//! (it scales with the feature count). Absolute times differ from the
//! paper's Python-on-i7 numbers; see EXPERIMENTS.md.

use std::time::Instant;

use hdc_attack::{
    duplicate_model, mapping_accuracy, reason_encoding, CountingOracle, FeatureExtractOptions,
    StandardDump,
};
use hdc_datasets::Benchmark;
use hdc_model::{HdcConfig, HdcModel, ModelKind};
use hdlock_bench::{fmt_f, RunOptions, TextTable};
use hypervec::HvRng;

fn main() {
    let opts = RunOptions::from_args(RunOptions {
        scale: 0.2,
        ..RunOptions::default()
    });
    println!("Table 1 reproduction: reasoning attack on standard HDC models");
    println!(
        "D = {}, M = 16, dataset scale = {} (use --full for paper-like sizes)\n",
        opts.dim, opts.scale
    );

    for kind in [ModelKind::NonBinary, ModelKind::Binary] {
        println!("== {kind} HDC model ==");
        let mut t = TextTable::new(vec![
            "benchmark",
            "N",
            "original acc",
            "recovered acc",
            "mapping acc",
            "reasoning time (s)",
            "guesses",
            "oracle queries",
        ]);
        for bench in Benchmark::ALL {
            let (train_ds, test_ds) = bench
                .generate(opts.scale, opts.seed)
                .expect("benchmark generation");
            let config = HdcConfig {
                dim: opts.dim,
                m_levels: 16,
                kind,
                epochs: 2,
                learning_rate: 1,
                seed: opts.seed,
            };
            let victim = HdcModel::fit_standard(&config, &train_ds).expect("training");
            let original_acc = victim.evaluate(&test_ds).expect("evaluation").accuracy;

            let mut rng = HvRng::from_seed(opts.seed ^ 0xA77AC4);
            let (dump, truth) = StandardDump::from_encoder(victim.encoder(), &mut rng);
            let oracle = CountingOracle::new(victim.encoder());

            let wall = Instant::now();
            let recovered = reason_encoding(&oracle, &dump, kind, FeatureExtractOptions::default())
                .expect("attack");
            let reasoning_time = wall.elapsed();

            let stolen = duplicate_model(&victim, &dump, &recovered).expect("reconstruction");
            let recovered_acc = stolen.evaluate(&test_ds).expect("evaluation").accuracy;
            let map_acc = mapping_accuracy(&recovered, &truth);

            t.row(vec![
                bench.to_string(),
                bench.n_features().to_string(),
                fmt_f(original_acc, 4),
                fmt_f(recovered_acc, 4),
                fmt_f(map_acc, 4),
                fmt_f(reasoning_time.as_secs_f64(), 2),
                recovered.stats.guesses.to_string(),
                recovered.stats.oracle_queries.to_string(),
            ]);
        }
        t.emit(opts.csv.as_deref());
    }
    println!("paper shape check: recovered acc == original acc on every row;");
    println!("reasoning time grows with N (PAMAP fastest, MNIST/FACE slowest).");
}
