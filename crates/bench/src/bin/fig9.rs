//! Fig. 9 — relative encoding time (clock cycles) of HDLock vs the
//! baseline HDC encoder, for `L ∈ 1..=5` on all five benchmarks,
//! measured on the cycle-level datapath simulator.
//!
//! Paper claims reproduced: `L = 1` is free (permutation = shifted
//! memory access), from `L = 2` the time grows linearly (+≈ 21 % per
//! layer), and the curves of all benchmarks coincide because the
//! relative growth is dataset-independent.

use hdc_datasets::Benchmark;
use hdc_hwsim::{relative_encoding_times, simulate_encode, HwConfig};
use hdlock_bench::{fmt_f, RunOptions, TextTable};

fn main() {
    let opts = RunOptions::from_args(RunOptions::default());
    let cfg = HwConfig::zynq_default().with_dim(opts.dim);
    println!("Fig. 9 reproduction: relative encoding time vs key layers (cycle-level sim)");
    println!(
        "D = {}, acc path {} b/cycle, bind path {} b/cycle, {} memory ports\n",
        cfg.dim, cfg.acc_width, cfg.bind_width, cfg.mem_ports
    );

    let layers: Vec<usize> = (1..=5).collect();
    let mut t = TextTable::new(
        std::iter::once("benchmark".to_owned())
            .chain(layers.iter().map(|l| format!("L = {l}")))
            .collect::<Vec<_>>(),
    );
    for bench in Benchmark::ALL {
        let series = relative_encoding_times(&cfg, bench.name(), bench.n_features(), &layers);
        let mut row = vec![bench.to_string()];
        row.extend(series.points.iter().map(|&(_, r)| fmt_f(r, 3)));
        t.row(row);
    }
    t.emit(opts.csv.as_deref());

    // Absolute cycle counts for one benchmark, for the curious.
    println!("absolute cycles per encoded MNIST sample:");
    for &l in &layers {
        let rep = simulate_encode(&cfg, 784, l);
        println!(
            "  L = {l}: {} cycles (bind busy {}, acc busy {}, acc utilization {})",
            rep.total_cycles,
            rep.bind_busy,
            rep.acc_busy,
            fmt_f(rep.acc_utilization(), 3)
        );
    }

    // Ablation called out in DESIGN.md: overlapping derive with
    // accumulate would hide the overhead entirely at these widths.
    let overlap_cfg = cfg.with_overlap(true);
    let base = simulate_encode(&cfg, 784, 1).total_cycles as f64;
    let l2_serial = simulate_encode(&cfg, 784, 2).total_cycles as f64 / base;
    let l2_overlap = simulate_encode(&overlap_cfg, 784, 2).total_cycles as f64 / base;
    println!(
        "\nablation — derive/accumulate overlap: L = 2 relative time {} (serial, paper's \n\
         design point ≈ 1.21) vs {} (overlapped pipeline)",
        fmt_f(l2_serial, 3),
        fmt_f(l2_overlap, 3)
    );
    println!("\npaper shape check: 1.0 at L = 1; ≈ +0.21 per additional layer; curves coincide.");
}
