//! Encoding-throughput benchmark with machine-readable output.
//!
//! Measures samples/second of the naive per-sample scalar path against
//! the word-parallel engine (single-sample and batch, single- and
//! multi-threaded) for the standard and the locked encoder, then writes
//! `BENCH_encoding.json` so the perf trajectory is tracked across PRs.
//!
//! Usage: `bench_encoding [--dim D] [--features N] [--levels M]
//! [--batch B] [--out PATH]` — defaults reproduce the acceptance
//! configuration `D = 10 000, N = 64`.

use std::fmt::Write as _;
use std::time::Instant;

use hdc_model::{Encoder, RecordEncoder};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::{kernel, HvRng};

struct Options {
    dim: usize,
    n_features: usize,
    m_levels: usize,
    batch: usize,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            dim: 10_000,
            n_features: 64,
            m_levels: 16,
            batch: 256,
            out: "BENCH_encoding.json".to_owned(),
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--dim" => opts.dim = value(i).parse().expect("--dim needs an integer"),
            "--features" => {
                opts.n_features = value(i).parse().expect("--features needs an integer")
            }
            "--levels" => opts.m_levels = value(i).parse().expect("--levels needs an integer"),
            "--batch" => opts.batch = value(i).parse().expect("--batch needs an integer"),
            "--out" => opts.out = value(i),
            other => panic!(
                "unknown argument '{other}'; supported: --dim --features --levels --batch --out"
            ),
        }
        i += 2;
    }
    opts
}

/// One measured configuration.
struct Measurement {
    name: String,
    samples_per_sec: f64,
}

/// Samples/second of the bit-sliced bundling core (one fused XOR +
/// ripple-carry add per feature) on one explicit kernel backend — the
/// loop `BitSliceAccumulator` runs per encoded sample, isolated from
/// encoder bookkeeping so the per-backend numbers track the raw SIMD
/// speedup.
fn kernel_bundle_throughput(
    k: &kernel::Kernel,
    dim: usize,
    n_features: usize,
    min_secs: f64,
) -> f64 {
    let n_words = dim.div_ceil(64);
    let mut rng = HvRng::from_seed(7);
    let feature_words: Vec<Vec<u64>> = (0..n_features)
        .map(|_| (0..n_words).map(|_| rng.next_u64()).collect())
        .collect();
    let value_words: Vec<u64> = (0..n_words).map(|_| rng.next_u64()).collect();
    let mut planes: Vec<Vec<u64>> = vec![vec![0u64; n_words]; 8];
    let mut scratch = vec![0u64; n_words];
    let encode_one_sample = |planes: &mut Vec<Vec<u64>>, scratch: &mut Vec<u64>| {
        for plane in planes.iter_mut() {
            plane.iter_mut().for_each(|w| *w = 0);
        }
        for fea in &feature_words {
            (k.xor_into)(fea, &value_words, scratch);
            for plane in planes.iter_mut() {
                if !(k.ripple_step)(plane, scratch) {
                    break;
                }
            }
        }
    };
    encode_one_sample(&mut planes, &mut scratch); // warm-up
    let mut calls = 0usize;
    let start = Instant::now();
    loop {
        encode_one_sample(&mut planes, &mut scratch);
        std::hint::black_box(&planes);
        calls += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    calls as f64 / start.elapsed().as_secs_f64()
}

/// Runs `encode_all` repeatedly until ≥ `min_secs` of wall clock is
/// spent, returning samples/second.
fn throughput(samples_per_call: usize, min_secs: f64, mut encode_all: impl FnMut()) -> f64 {
    // Warm-up (also builds lazy caches outside the timed region).
    encode_all();
    let mut calls = 0usize;
    let start = Instant::now();
    loop {
        encode_all();
        calls += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    (calls * samples_per_call) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let opts = parse_options();
    let mut rng = HvRng::from_seed(2022);
    let record = RecordEncoder::generate(&mut rng, opts.n_features, opts.m_levels, opts.dim)
        .expect("encoder generation");
    let lock_cfg = LockConfig {
        n_features: opts.n_features,
        m_levels: opts.m_levels,
        dim: opts.dim,
        pool_size: opts.n_features,
        n_layers: 2,
    };
    let mut locked = LockedEncoder::generate(&mut rng, &lock_cfg).expect("locked encoder");

    let rows: Vec<Vec<u16>> = (0..opts.batch)
        .map(|_| {
            (0..opts.n_features)
                .map(|_| rng.index(opts.m_levels) as u16)
                .collect()
        })
        .collect();
    let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
    let min_secs = 0.5;

    let mut results: Vec<Measurement> = Vec::new();

    // Naive per-sample scalar baseline (one i32 add per dimension per
    // feature) — the path every consumer used before the engine.
    results.push(Measurement {
        name: "record_scalar_per_sample".to_owned(),
        samples_per_sec: throughput(opts.batch, min_secs, || {
            for row in &refs {
                std::hint::black_box(record.encode_int_scalar(row).sign_ties_positive());
            }
        }),
    });

    // Word-parallel engine, still one sample per call.
    results.push(Measurement {
        name: "record_engine_per_sample".to_owned(),
        samples_per_sec: throughput(opts.batch, min_secs, || {
            for row in &refs {
                std::hint::black_box(record.encode_binary(row));
            }
        }),
    });

    // Batch path pinned to one worker, then with all available workers.
    std::env::set_var("HYPERVEC_THREADS", "1");
    results.push(Measurement {
        name: "record_batch_1_thread".to_owned(),
        samples_per_sec: throughput(opts.batch, min_secs, || {
            std::hint::black_box(record.encode_batch_binary(&refs));
        }),
    });
    std::env::remove_var("HYPERVEC_THREADS");
    results.push(Measurement {
        name: "record_batch_all_threads".to_owned(),
        samples_per_sec: throughput(opts.batch, min_secs, || {
            std::hint::black_box(record.encode_batch_binary(&refs));
        }),
    });

    // Locked encoder: batch in both derivation modes.
    results.push(Measurement {
        name: "locked_cached_batch".to_owned(),
        samples_per_sec: throughput(opts.batch, min_secs, || {
            std::hint::black_box(locked.encode_batch_binary(&refs));
        }),
    });
    locked.set_mode(DeriveMode::OnTheFly);
    results.push(Measurement {
        name: "locked_on_the_fly_batch".to_owned(),
        samples_per_sec: throughput(opts.batch, min_secs, || {
            std::hint::black_box(locked.encode_batch_binary(&refs));
        }),
    });

    // Per-kernel-backend timings of the bundling core the encoders run
    // on, so BENCH_encoding.json tracks the raw SIMD speedup next to
    // the end-to-end encoder numbers.
    let backends = kernel::available();
    for k in &backends {
        results.push(Measurement {
            name: format!("kernel_bundle_{}", k.name),
            samples_per_sec: kernel_bundle_throughput(k, opts.dim, opts.n_features, min_secs),
        });
    }

    let scalar = results[0].samples_per_sec;
    let batch_best = results
        .iter()
        .filter(|m| m.name.starts_with("record_batch"))
        .map(|m| m.samples_per_sec)
        .fold(0.0f64, f64::max);
    let speedup = batch_best / scalar;

    println!(
        "encoding throughput  (D = {}, N = {}, M = {}, batch = {}, kernel backend = {})",
        opts.dim,
        opts.n_features,
        opts.m_levels,
        opts.batch,
        kernel::name()
    );
    for m in &results {
        println!("  {:<28} {:>12.0} samples/s", m.name, m.samples_per_sec);
    }
    println!("  batch vs scalar speedup: {speedup:.1}x");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"dim\": {}, \"n_features\": {}, \"m_levels\": {}, \"batch\": {}, \"threads\": {} }},",
        opts.dim,
        opts.n_features,
        opts.m_levels,
        opts.batch,
        hypervec::par::max_threads()
    );
    let backend_names: Vec<String> = backends.iter().map(|k| format!("\"{}\"", k.name)).collect();
    let _ = writeln!(
        json,
        "  \"kernel\": {{ \"backend\": \"{}\", \"available\": [{}] }},",
        kernel::name(),
        backend_names.join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"samples_per_sec\": {:.1} }}{comma}",
            m.name, m.samples_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_batch_vs_scalar\": {speedup:.2}");
    let _ = writeln!(json, "}}");
    std::fs::write(&opts.out, json).expect("write benchmark JSON");
    println!("(json written to {})", opts.out);
}
