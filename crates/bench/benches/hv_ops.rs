//! Substrate microbenchmarks: the MAP operations the whole system is
//! built on, including the packed-vs-naive ablation from `DESIGN.md` §4.1.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hypervec::{HvRng, IntHv};

/// Naive `Vec<i8>` bipolar multiply — the representation the bit-packed
/// `BinaryHv` replaces; kept here as the ablation baseline.
fn naive_bind(a: &[i8], b: &[i8]) -> Vec<i8> {
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

fn bench_bind(c: &mut Criterion) {
    let mut rng = HvRng::from_seed(1);
    let d = 10_000;
    let a = rng.binary_hv(d);
    let b = rng.binary_hv(d);
    let na: Vec<i8> = a.iter().collect();
    let nb: Vec<i8> = b.iter().collect();

    let mut group = c.benchmark_group("bind_d10000");
    group.bench_function("packed_xor", |bench| {
        bench.iter(|| black_box(a.bind(black_box(&b))));
    });
    group.bench_function("naive_vec_i8", |bench| {
        bench.iter(|| black_box(naive_bind(black_box(&na), black_box(&nb))));
    });
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let mut rng = HvRng::from_seed(2);
    for d in [1_000usize, 10_000, 100_000] {
        let a = rng.binary_hv(d);
        let b = rng.binary_hv(d);
        c.bench_with_input(BenchmarkId::new("hamming", d), &d, |bench, _| {
            bench.iter(|| black_box(a.hamming(black_box(&b))));
        });
    }
}

fn bench_rotate(c: &mut Criterion) {
    let mut rng = HvRng::from_seed(3);
    let a = rng.binary_hv(10_000);
    c.bench_function("rotate_d10000", |bench| {
        bench.iter(|| black_box(a.rotated(black_box(4097))));
    });
}

fn bench_accumulate(c: &mut Criterion) {
    let mut rng = HvRng::from_seed(4);
    let d = 10_000;
    let a = rng.binary_hv(d);
    let b = rng.binary_hv(d);
    c.bench_function("fused_bind_accumulate_d10000", |bench| {
        bench.iter(|| {
            let mut acc = IntHv::zeros(d);
            acc.add_bound_pair(black_box(&a), black_box(&b));
            black_box(acc)
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bind, bench_hamming, bench_rotate, bench_accumulate
}
criterion_main!(benches);
