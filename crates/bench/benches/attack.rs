//! Attack-cost benchmarks: the per-guess primitives whose counts the
//! complexity analysis multiplies (Table 1 reasoning time ≈ guesses ×
//! per-guess cost), plus a full small-scale extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_attack::{
    extract_features, extract_values, probe_row, CountingOracle, EncodingOracle,
    FeatureAttackContext, FeatureExtractOptions, LockProbe, StandardDump,
};
use hdc_model::{ModelKind, RecordEncoder};
use hdlock::{BasePool, EncodingKey, FeatureKey, LayerKey, LockConfig, LockedEncoder};
use hypervec::{HvRng, LevelHvs};

fn bench_candidate_distance(c: &mut Criterion) {
    let mut rng = HvRng::from_seed(1);
    let enc = RecordEncoder::generate(&mut rng, 784, 16, 10_000).expect("encoder");
    let (dump, _) = StandardDump::from_encoder(&enc, &mut rng);
    let oracle = CountingOracle::new(&enc);
    let values = extract_values(&oracle, &dump, ModelKind::Binary).expect("values");
    let ctx = FeatureAttackContext::new(&dump, &values).expect("context");
    let h = oracle.query_binary(&probe_row(784, 16, 0));
    c.bench_function("attack_guess_standard_mnist_shape", |bench| {
        let mut r = 0usize;
        bench.iter(|| {
            r = (r + 1) % 784;
            black_box(ctx.candidate_distance_binary(&dump, black_box(&h), r))
        });
    });
}

fn bench_lock_guess(c: &mut Criterion) {
    let cfg = LockConfig {
        n_features: 784,
        m_levels: 16,
        dim: 10_000,
        pool_size: 784,
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(2);
    let pool = BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
    let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels).expect("levels");
    let key =
        EncodingKey::random(&mut rng, cfg.n_features, 2, cfg.pool_size, cfg.dim).expect("key");
    let enc = LockedEncoder::from_parts(pool.clone(), values.clone(), key).expect("encoder");
    let oracle = CountingOracle::new(&enc);
    let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary).expect("probe");
    c.bench_function("attack_guess_hdlock_l2", |bench| {
        let mut k = 0usize;
        bench.iter(|| {
            k = (k + 1) % 10_000;
            let guess = FeatureKey::new(vec![
                LayerKey {
                    base_index: k % 784,
                    rotation: k,
                },
                LayerKey {
                    base_index: (k * 7) % 784,
                    rotation: (k * 13) % 10_000,
                },
            ]);
            black_box(probe.score(&pool, &guess).expect("valid guess"))
        });
    });
}

fn bench_full_extraction_small(c: &mut Criterion) {
    c.bench_function("full_extraction_n64", |bench| {
        bench.iter(|| {
            let mut rng = HvRng::from_seed(3);
            let enc = RecordEncoder::generate(&mut rng, 64, 8, 4096).expect("encoder");
            let (dump, _) = StandardDump::from_encoder(&enc, &mut rng);
            let oracle = CountingOracle::new(&enc);
            let values = extract_values(&oracle, &dump, ModelKind::Binary).expect("values");
            let features = extract_features(
                &oracle,
                &dump,
                &values,
                ModelKind::Binary,
                FeatureExtractOptions::default(),
            )
            .expect("features");
            black_box(features.assignment)
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_candidate_distance, bench_lock_guess, bench_full_extraction_small
}
criterion_main!(benches);
