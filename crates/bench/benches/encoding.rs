//! Software encode-latency benchmark: standard encoder vs HDLock at
//! `L ∈ {1, 2, 3, 5}` and both derivation modes.
//!
//! Corroborates the Fig. 9 trend in software: cached derivation makes
//! locking free at inference time, on-the-fly derivation pays per
//! sample and grows with `L`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_model::{Encoder, RecordEncoder};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::HvRng;

const N: usize = 784;
const M: usize = 16;
const D: usize = 10_000;

fn row() -> Vec<u16> {
    (0..N).map(|i| (i % M) as u16).collect()
}

fn bench_standard(c: &mut Criterion) {
    let mut rng = HvRng::from_seed(1);
    let enc = RecordEncoder::generate(&mut rng, N, M, D).expect("encoder");
    let r = row();
    c.bench_function("encode_standard_mnist_shape", |bench| {
        bench.iter(|| black_box(enc.encode_binary(black_box(&r))));
    });
    c.bench_function("encode_standard_scalar_reference", |bench| {
        bench.iter(|| black_box(enc.encode_int_scalar(black_box(&r)).sign_ties_positive()));
    });
}

fn bench_batch(c: &mut Criterion) {
    let mut rng = HvRng::from_seed(2);
    let enc = RecordEncoder::generate(&mut rng, N, M, D).expect("encoder");
    let rows: Vec<Vec<u16>> = (0..32)
        .map(|s| (0..N).map(|i| ((s + i) % M) as u16).collect())
        .collect();
    let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
    let mut group = c.benchmark_group("encode_batch_32");
    group.bench_function("record", |bench| {
        bench.iter(|| black_box(enc.encode_batch_binary(black_box(&refs))));
    });
    let cfg = LockConfig {
        n_features: N,
        m_levels: M,
        dim: D,
        pool_size: N,
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(3);
    let mut locked = LockedEncoder::generate(&mut rng, &cfg).expect("encoder");
    group.bench_function("locked_cached", |bench| {
        bench.iter(|| black_box(locked.encode_batch_binary(black_box(&refs))));
    });
    locked.set_mode(DeriveMode::OnTheFly);
    group.bench_function("locked_on_the_fly", |bench| {
        bench.iter(|| black_box(locked.encode_batch_binary(black_box(&refs))));
    });
    group.finish();
}

fn bench_locked(c: &mut Criterion) {
    let r = row();
    let mut group = c.benchmark_group("encode_locked_mnist_shape");
    for layers in [1usize, 2, 3, 5] {
        let mut rng = HvRng::from_seed(layers as u64);
        let cfg = LockConfig {
            n_features: N,
            m_levels: M,
            dim: D,
            pool_size: N,
            n_layers: layers,
        };
        let mut enc = LockedEncoder::generate(&mut rng, &cfg).expect("encoder");
        group.bench_with_input(BenchmarkId::new("cached", layers), &layers, |bench, _| {
            bench.iter(|| black_box(enc.encode_binary(black_box(&r))));
        });
        enc.set_mode(DeriveMode::OnTheFly);
        group.bench_with_input(
            BenchmarkId::new("on_the_fly", layers),
            &layers,
            |bench, _| {
                bench.iter(|| black_box(enc.encode_binary(black_box(&r))));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_standard, bench_batch, bench_locked
}
criterion_main!(benches);
